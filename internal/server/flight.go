package server

// This file is the flight-recorder surface: the two debug read endpoints
// (GET /v1/debug:flight, GET /v1/debug:events) and the crash black box —
// one JSON bundle of the wide-event ring, the lifecycle journal, and a
// metrics snapshot, written on panic (instrument's recover) or SIGQUIT
// (cmd/ksprd's signal handler) before the process dies.

import (
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"time"

	"repro/internal/obs"
)

// Flight exposes the server's flight recorder (nil when disabled via
// Config.FlightCapacity < 0).
func (s *Server) Flight() *obs.FlightRecorder { return s.flight }

// Journal exposes the server's lifecycle event journal.
func (s *Server) Journal() *obs.Journal { return s.journal }

// flightResponse is the GET /v1/debug:flight payload.
type flightResponse struct {
	Events []obs.WideEvent `json:"events"`
	Stats  obs.FlightStats `json:"stats"`
	// JournalLastSeq is the journal's current high-water mark, so callers
	// can follow a flight read with a /v1/debug:events join immediately.
	JournalLastSeq uint64 `json:"journal_last_seq"`
}

// handleDebugFlight serves the retained wide events, oldest first,
// filterable by endpoint, dataset, min_latency_ms, errors_only, and limit
// (limit keeps the most recent matches).
func (s *Server) handleDebugFlight(w http.ResponseWriter, r *http.Request) {
	if s.flight == nil {
		writeError(w, http.StatusNotFound, "flight recorder disabled (FlightCapacity < 0)")
		return
	}
	q := r.URL.Query()
	filter := obs.FlightFilter{Endpoint: q.Get("endpoint"), Dataset: q.Get("dataset")}
	if raw := q.Get("min_latency_ms"); raw != "" {
		ms, err := strconv.ParseFloat(raw, 64)
		if err != nil || ms < 0 {
			writeError(w, http.StatusBadRequest, "invalid min_latency_ms=%q", raw)
			return
		}
		filter.MinLatency = time.Duration(ms * float64(time.Millisecond))
	}
	if raw := q.Get("errors_only"); raw != "" {
		v, err := strconv.ParseBool(raw)
		if err != nil {
			writeError(w, http.StatusBadRequest, "invalid errors_only=%q: %v", raw, err)
			return
		}
		filter.ErrorsOnly = v
	}
	if raw := q.Get("limit"); raw != "" {
		v, err := strconv.Atoi(raw)
		if err != nil || v < 0 {
			writeError(w, http.StatusBadRequest, "invalid limit=%q", raw)
			return
		}
		filter.Limit = v
	}
	events := s.flight.Events(filter)
	if events == nil {
		events = []obs.WideEvent{} // an empty ring is [], not null
	}
	writeJSON(w, http.StatusOK, flightResponse{
		Events:         events,
		Stats:          s.flight.Stats(),
		JournalLastSeq: s.journal.LastSeq(),
	})
}

// eventsResponse is the GET /v1/debug:events payload.
type eventsResponse struct {
	Events []obs.JournalEvent `json:"events"`
	// LastSeq is the journal's high-water mark — pass it back as ?since=
	// to resume the cursor.
	LastSeq uint64 `json:"last_seq"`
}

// handleDebugEvents serves the lifecycle journal with a since-sequence
// cursor: ?since=N returns events with seq > N (oldest retained first),
// ?limit=M caps the page.
func (s *Server) handleDebugEvents(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	var since uint64
	if raw := q.Get("since"); raw != "" {
		v, err := strconv.ParseUint(raw, 10, 64)
		if err != nil {
			writeError(w, http.StatusBadRequest, "invalid since=%q: %v", raw, err)
			return
		}
		since = v
	}
	limit := 0
	if raw := q.Get("limit"); raw != "" {
		v, err := strconv.Atoi(raw)
		if err != nil || v < 0 {
			writeError(w, http.StatusBadRequest, "invalid limit=%q", raw)
			return
		}
		limit = v
	}
	events := s.journal.Since(since, limit)
	if events == nil {
		events = []obs.JournalEvent{}
	}
	writeJSON(w, http.StatusOK, eventsResponse{Events: events, LastSeq: s.journal.LastSeq()})
}

// blackBoxBundle is the crash dump written to Config.BlackBoxDir: the
// whole flight ring, the whole journal, and a metrics snapshot — enough to
// reconstruct what the server was doing when it died.
type blackBoxBundle struct {
	Time        time.Time          `json:"time"`
	Reason      string             `json:"reason"`
	PID         int                `json:"pid"`
	Build       obs.BuildInfo      `json:"build"`
	Flight      []obs.WideEvent    `json:"flight"`
	FlightStats obs.FlightStats    `json:"flight_stats"`
	Journal     []obs.JournalEvent `json:"journal"`
	Metrics     MetricsSnapshot    `json:"metrics"`
}

// WriteBlackBox dumps the black-box bundle to Config.BlackBoxDir as
// blackbox-<pid>-<unixnano>.json (tmp + rename, so a half-written bundle
// is never left under the final name) and returns the bundle path. It
// errors when no BlackBoxDir is configured.
func (s *Server) WriteBlackBox(reason string) (string, error) {
	dir := s.cfg.BlackBoxDir
	if dir == "" {
		return "", fmt.Errorf("server: black box disabled (no BlackBoxDir)")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", fmt.Errorf("server: black box dir: %w", err)
	}
	s.journal.Append(obs.JournalEvent{Type: obs.EventBlackBox, Detail: map[string]any{"reason": reason}})
	bundle := blackBoxBundle{
		Time:        time.Now(),
		Reason:      reason,
		PID:         os.Getpid(),
		Build:       obs.ReadBuildInfo(),
		Flight:      s.flight.Events(obs.FlightFilter{}),
		FlightStats: s.flight.Stats(),
		Journal:     s.journal.Snapshot(),
		Metrics:     s.metricsView(),
	}
	if bundle.Flight == nil {
		bundle.Flight = []obs.WideEvent{}
	}
	raw, err := json.MarshalIndent(bundle, "", "  ")
	if err != nil {
		return "", fmt.Errorf("server: black box encode: %w", err)
	}
	path := filepath.Join(dir, fmt.Sprintf("blackbox-%d-%d.json", os.Getpid(), time.Now().UnixNano()))
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, raw, 0o644); err != nil {
		return "", fmt.Errorf("server: black box write: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return "", fmt.Errorf("server: black box rename: %w", err)
	}
	return path, nil
}
