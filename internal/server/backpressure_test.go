package server

import (
	"encoding/json"
	"io"
	"net/http"
	"strconv"
	"strings"
	"testing"
)

// These tests pin the 429 backpressure contract the load harness
// (cmd/ksprload) verifies in production traffic: a shed request carries a
// sane Retry-After, a pure JSON error body, and — critically — executes
// nothing, even when part of the batch could have been answered from
// cache before the budget check.

// exhaustBudget claims every extra CPU slot, as long-running parallel
// queries would, and registers the release.
func exhaustBudget(t *testing.T, srv *Server, slots int) {
	t.Helper()
	if got := srv.cpu.Acquire(slots); got != slots {
		t.Fatalf("claimed %d slots, want %d", got, slots)
	}
	t.Cleanup(func() { srv.cpu.Release(slots) })
}

// TestBatch429RetryAfterContract: the Retry-After header on a shed batch
// must parse as an integer number of seconds in a range a client can
// honestly sleep on, and the body must be a single JSON error object —
// for both the NDJSON and JSON-envelope wire forms.
func TestBatch429RetryAfterContract(t *testing.T) {
	srv, ts := newTestServer(t, Config{CPUSlots: 2, MaxParallelism: 8})
	loadGenerated(t, ts, "ind", 100, 3, 3)
	exhaustBudget(t, srv, 2)

	ndjson := postNDJSON(t, ts.URL+"/v1/kspr:batch",
		`{"dataset":"ind","k":4,"parallelism":4}`+"\n"+`{"focal":1}`+"\n")
	defer ndjson.Body.Close()
	envelope, envBody := postJSON(t, ts.URL+"/v1/kspr:batch", batchRequest{
		Dataset:     "ind",
		K:           4,
		Parallelism: 4,
		Queries:     []batchQuery{{Focal: 1}},
	})

	for _, tc := range []struct {
		form string
		resp *http.Response
		body []byte
	}{
		{"ndjson", ndjson, nil},
		{"envelope", envelope, envBody},
	} {
		if tc.resp.StatusCode != http.StatusTooManyRequests {
			t.Fatalf("%s: status %d, want 429", tc.form, tc.resp.StatusCode)
		}
		ra := tc.resp.Header.Get("Retry-After")
		secs, err := strconv.Atoi(ra)
		if err != nil {
			t.Fatalf("%s: Retry-After %q is not an integer: %v", tc.form, ra, err)
		}
		if secs < 1 || secs > 60 {
			t.Fatalf("%s: Retry-After %d outside the sane [1,60] range", tc.form, secs)
		}
		body := tc.body
		if body == nil {
			var err error
			body, err = io.ReadAll(tc.resp.Body)
			if err != nil {
				t.Fatalf("%s: read body: %v", tc.form, err)
			}
		}
		var errObj struct {
			Error string `json:"error"`
		}
		if err := json.Unmarshal(body, &errObj); err != nil || errObj.Error == "" {
			t.Fatalf("%s: 429 body is not a single JSON error object: %q (%v)", tc.form, body, err)
		}
		if strings.Contains(string(body), `"index"`) {
			t.Fatalf("%s: 429 body leaks batch stream lines: %q", tc.form, body)
		}
	}
}

// TestBatch429NeverPartiallyExecutes: a batch whose first items are cache
// hits still sheds atomically — the cached results must not be streamed
// before the budget check fails, and the response must be the error
// alone. (The cache probe happens before the budget acquisition, so this
// is the path where a partial stream would leak if the ordering ever
// regressed.)
func TestBatch429NeverPartiallyExecutes(t *testing.T) {
	srv, ts := newTestServer(t, Config{CPUSlots: 2, MaxParallelism: 8})
	loadGenerated(t, ts, "ind", 100, 3, 3)

	// Prime the cache for focal 1 with a serial batch.
	warm := readBatchLines(t, postNDJSON(t, ts.URL+"/v1/kspr:batch",
		`{"dataset":"ind","k":4}`+"\n"+`{"focal":1}`+"\n"))
	if warm[0].Error != "" {
		t.Fatalf("warm-up batch failed: %s", warm[0].Error)
	}

	exhaustBudget(t, srv, 2)

	// Focal 1 would settle from cache instantly; focal 2 needs compute.
	resp := postNDJSON(t, ts.URL+"/v1/kspr:batch",
		`{"dataset":"ind","k":4,"parallelism":4}`+"\n"+`{"focal":1}`+"\n"+`{"focal":2}`+"\n")
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); strings.Contains(ct, "ndjson") {
		t.Fatalf("429 response advertises a stream Content-Type %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	// Exactly one JSON value, an error object — no batch line snuck out
	// ahead of the shed, cached or otherwise.
	dec := json.NewDecoder(strings.NewReader(string(body)))
	var errObj struct {
		Error  string          `json:"error"`
		Index  *int            `json:"index"`
		Result json.RawMessage `json:"result"`
	}
	if err := dec.Decode(&errObj); err != nil {
		t.Fatalf("429 body is not JSON: %q (%v)", body, err)
	}
	if errObj.Error == "" || errObj.Index != nil || errObj.Result != nil {
		t.Fatalf("429 body is not a pure error object: %q", body)
	}
	if dec.More() {
		t.Fatalf("429 body carries more than one JSON value: %q", body)
	}
}

// TestBatchZeroSlotBudgetDegradesWithout429: a serial-only server (zero
// extra CPU slots) can never satisfy a parallelism ask, so shedding would
// have the client retry forever — the contract is to degrade to serial
// execution and answer. This is the flip side the load harness checks:
// 429 only ever appears when the budget genuinely has slots.
func TestBatchZeroSlotBudgetDegradesWithout429(t *testing.T) {
	_, ts := newTestServer(t, Config{CPUSlots: 0, MaxParallelism: 8})
	loadGenerated(t, ts, "ind", 100, 3, 3)

	resp := postNDJSON(t, ts.URL+"/v1/kspr:batch",
		`{"dataset":"ind","k":4,"parallelism":4}`+"\n"+`{"focal":1}`+"\n"+`{"focal":2}`+"\n")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want 200 (zero-slot budgets degrade, never shed)", resp.StatusCode)
	}
	lines := readBatchLines(t, resp)
	for i := 0; i < 2; i++ {
		if lines[i].Error != "" {
			t.Fatalf("item %d failed under serial degradation: %s", i, lines[i].Error)
		}
	}
}

// TestBatch429ReleasesNothing: a shed request must not leak budget —
// after a 429 the full budget is still available to the next caller.
func TestBatch429ReleasesNothing(t *testing.T) {
	srv, ts := newTestServer(t, Config{CPUSlots: 2, MaxParallelism: 8})
	loadGenerated(t, ts, "ind", 100, 3, 3)

	if got := srv.cpu.Acquire(2); got != 2 {
		t.Fatalf("claimed %d slots, want 2", got)
	}
	resp := postNDJSON(t, ts.URL+"/v1/kspr:batch",
		`{"dataset":"ind","k":4,"parallelism":4}`+"\n"+`{"focal":1}`+"\n")
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", resp.StatusCode)
	}
	srv.cpu.Release(2)
	// The whole budget must be intact: a fresh ask for every slot succeeds.
	if got := srv.cpu.Acquire(2); got != 2 {
		t.Fatalf("budget corrupted after 429: acquired %d of 2 slots", got)
	}
	srv.cpu.Release(2)
}
