package server

import (
	"container/list"
	"strings"
	"sync"
	"sync/atomic"
)

// Cache is a sharded LRU for query results. Keys embed the dataset
// generation, so a reload naturally orphans stale entries (they age out of
// the LRU without explicit invalidation). Values must be immutable once
// cached — handlers share them across requests.
type Cache struct {
	shards []*cacheShard
	hits   atomic.Uint64
	misses atomic.Uint64
}

type cacheShard struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List // front = most recent
	items map[string]*list.Element
}

type cacheEntry struct {
	key string
	val any
}

// NewCache builds a cache with the given shard count and total capacity
// (entries, spread evenly across shards). Zero or negative arguments fall
// back to 8 shards x 128 entries.
func NewCache(shardCount, capacity int) *Cache {
	if shardCount <= 0 {
		shardCount = 8
	}
	if capacity <= 0 {
		capacity = 1024
	}
	perShard := capacity / shardCount
	if perShard < 1 {
		perShard = 1
	}
	c := &Cache{shards: make([]*cacheShard, shardCount)}
	for i := range c.shards {
		c.shards[i] = &cacheShard{
			cap:   perShard,
			ll:    list.New(),
			items: make(map[string]*list.Element),
		}
	}
	return c
}

// fnv32a hashes a string with FNV-1a without the hash.Hash32 allocation
// or the string-to-[]byte copy — shard() sits on every request's cache
// Get and Put, and load profiles showed the per-call hasher allocations
// dominating the cache's cost well before lock contention did.
func fnv32a(key string) uint32 {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= prime32
	}
	return h
}

func (c *Cache) shard(key string) *cacheShard {
	return c.shards[fnv32a(key)%uint32(len(c.shards))]
}

// Get returns the cached value for key, recording a hit or miss.
func (c *Cache) Get(key string) (any, bool) {
	s := c.shard(key)
	s.mu.Lock()
	el, ok := s.items[key]
	var val any
	if ok {
		s.ll.MoveToFront(el)
		val = el.Value.(*cacheEntry).val
	}
	s.mu.Unlock()
	if !ok {
		c.misses.Add(1)
		return nil, false
	}
	c.hits.Add(1)
	return val, true
}

// Put inserts (or refreshes) key, evicting the shard's least recently used
// entry when over capacity.
func (c *Cache) Put(key string, val any) {
	s := c.shard(key)
	s.mu.Lock()
	if el, ok := s.items[key]; ok {
		el.Value.(*cacheEntry).val = val
		s.ll.MoveToFront(el)
		s.mu.Unlock()
		return
	}
	s.items[key] = s.ll.PushFront(&cacheEntry{key: key, val: val})
	for s.ll.Len() > s.cap {
		oldest := s.ll.Back()
		s.ll.Remove(oldest)
		delete(s.items, oldest.Value.(*cacheEntry).key)
	}
	s.mu.Unlock()
}

// EachPrefix calls fn for every cached entry whose key starts with
// prefix ("" matches all). Filtering happens before the per-shard
// snapshot copy, so scanning for one dataset-generation's entries costs
// only the matches; fn then runs lock-free and may call back into the
// cache (the migration pass re-Puts entries under new-generation keys).
// Iteration order is unspecified.
func (c *Cache) EachPrefix(prefix string, fn func(key string, val any)) {
	for _, s := range c.shards {
		s.mu.Lock()
		var entries []cacheEntry
		for el := s.ll.Front(); el != nil; el = el.Next() {
			e := el.Value.(*cacheEntry)
			if strings.HasPrefix(e.key, prefix) {
				entries = append(entries, *e)
			}
		}
		s.mu.Unlock()
		for _, e := range entries {
			fn(e.key, e.val)
		}
	}
}

// Len returns the total number of cached entries.
func (c *Cache) Len() int {
	n := 0
	for _, s := range c.shards {
		s.mu.Lock()
		n += s.ll.Len()
		s.mu.Unlock()
	}
	return n
}

// CacheStats is the /metrics view of the cache.
type CacheStats struct {
	Hits    uint64  `json:"hits"`
	Misses  uint64  `json:"misses"`
	HitRate float64 `json:"hit_rate"`
	Entries int     `json:"entries"`
	Shards  int     `json:"shards"`
}

// Stats snapshots the counters.
func (c *Cache) Stats() CacheStats {
	st := CacheStats{
		Hits:    c.hits.Load(),
		Misses:  c.misses.Load(),
		Entries: c.Len(),
		Shards:  len(c.shards),
	}
	if total := st.Hits + st.Misses; total > 0 {
		st.HitRate = float64(st.Hits) / float64(total)
	}
	return st
}
