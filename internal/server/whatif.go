// The what-if endpoints: competitive impact attribution
// (GET /v1/impact:competitors), repricing search (POST /v1/whatif:price),
// and impact–price frontiers (POST /v1/whatif:frontier). All three call
// the library's what-if layer on a pool worker, bound the Monte-Carlo work
// per request, and cache responses under generation-prefixed keys, so a
// mutation batch implicitly orphans stale what-if answers (reprices of the
// focal can flip who dominates whom, so — unlike plain kSPR results — the
// mutation path never migrates these across generations).
package server

import (
	"context"
	"errors"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"time"

	kspr "repro"
)

// ---- wire types ----------------------------------------------------------

type whatifStatsWire struct {
	Probes     int     `json:"probes"`
	Kept       int     `json:"kept"`
	Recomputed int     `json:"recomputed"`
	KeepRate   float64 `json:"keep_rate"`
	ProbeNs    int64   `json:"probe_ns"`
	ElapsedMs  float64 `json:"elapsed_ms"`
}

func toStatsWire(s kspr.WhatIfStats) whatifStatsWire {
	return whatifStatsWire{
		Probes:     s.Probes,
		Kept:       s.Kept,
		Recomputed: s.Recomputed,
		KeepRate:   s.KeepRate,
		ProbeNs:    s.ProbeNs,
		ElapsedMs:  float64(s.ElapsedNs) / float64(time.Millisecond),
	}
}

type competitorWire struct {
	ID            int     `json:"id"`
	StableID      int64   `json:"stable_id"`
	Label         string  `json:"label,omitempty"`
	MissShare     float64 `json:"miss_share"`
	PressureShare float64 `json:"pressure_share"`
}

type competitorsResponse struct {
	Dataset     string           `json:"dataset"`
	Generation  uint64           `json:"generation"`
	Focal       int              `json:"focal"`
	K           int              `json:"k"`
	Samples     int              `json:"samples"`
	Impact      float64          `json:"impact"`
	Miss        float64          `json:"miss"`
	Competitors []competitorWire `json:"competitors"`
	Cached      bool             `json:"cached"`
	// Trace carries the engine phase breakdown under ?debug=trace.
	Trace *traceWire `json:"trace,omitempty"`
}

type priceRequest struct {
	Dataset string  `json:"dataset"`
	Focal   int     `json:"focal"`
	K       int     `json:"k"`
	Attr    int     `json:"attr"`
	Target  float64 `json:"target"`
	// MaxDelta bounds the attribute increase (0 = automatic bracket
	// expansion); Eps is the bisection resolution (0 = 1e-6).
	MaxDelta     float64 `json:"max_delta,omitempty"`
	Eps          float64 `json:"eps,omitempty"`
	Samples      int     `json:"samples,omitempty"`
	Seed         int64   `json:"seed,omitempty"`
	VolumeMetric bool    `json:"volume_metric,omitempty"`
	Algorithm    string  `json:"algorithm,omitempty"`
	TimeoutMs    int     `json:"timeout_ms,omitempty"`
	NoCache      bool    `json:"no_cache,omitempty"`
}

type priceResponse struct {
	Dataset     string          `json:"dataset"`
	Generation  uint64          `json:"generation"`
	Focal       int             `json:"focal"`
	Attr        int             `json:"attr"`
	K           int             `json:"k"`
	Target      float64         `json:"target"`
	Delta       float64         `json:"delta"`
	Value       float64         `json:"value"`
	Impact      float64         `json:"impact"`
	Baseline    float64         `json:"baseline"`
	AlreadyMet  bool            `json:"already_met,omitempty"`
	LowerDelta  float64         `json:"lower_delta"`
	LowerImpact float64         `json:"lower_impact"`
	Stats       whatifStatsWire `json:"stats"`
	Cached      bool            `json:"cached"`
	// Trace carries the engine phase breakdown under ?debug=trace.
	Trace *traceWire `json:"trace,omitempty"`
}

type frontierRequest struct {
	Dataset string  `json:"dataset"`
	Focal   int     `json:"focal"`
	K       int     `json:"k"`
	Attr    int     `json:"attr"`
	Min     float64 `json:"min,omitempty"`
	Max     float64 `json:"max,omitempty"`
	// Steps is the grid size (0 = 16); capped by the server's MaxBatch.
	Steps        int    `json:"steps,omitempty"`
	Samples      int    `json:"samples,omitempty"`
	Seed         int64  `json:"seed,omitempty"`
	VolumeMetric bool   `json:"volume_metric,omitempty"`
	Algorithm    string `json:"algorithm,omitempty"`
	TimeoutMs    int    `json:"timeout_ms,omitempty"`
	NoCache      bool   `json:"no_cache,omitempty"`
}

type frontierPointWire struct {
	Value   float64 `json:"value"`
	Delta   float64 `json:"delta"`
	Impact  float64 `json:"impact"`
	Regions int     `json:"regions"`
	Kept    bool    `json:"kept,omitempty"`
}

type frontierResponse struct {
	Dataset    string              `json:"dataset"`
	Generation uint64              `json:"generation"`
	Focal      int                 `json:"focal"`
	Attr       int                 `json:"attr"`
	K          int                 `json:"k"`
	Points     []frontierPointWire `json:"points"`
	Stats      whatifStatsWire     `json:"stats"`
	Cached     bool                `json:"cached"`
	// Trace carries the engine phase breakdown under ?debug=trace.
	Trace *traceWire `json:"trace,omitempty"`
}

// ---- helpers -------------------------------------------------------------

// parseExactAlgorithm resolves an algorithm name for endpoints that need
// exact region sets (everything what-if).
func parseExactAlgorithm(s string) (kspr.Algorithm, error) {
	algo, approx, err := parseAlgorithm(s)
	if err != nil {
		return 0, err
	}
	if approx {
		return 0, fmt.Errorf("what-if queries need an exact algorithm (cta, p-cta, lp-cta, k-skyband)")
	}
	return algo, nil
}

// clampSamples applies the per-request Monte-Carlo bound with the
// library's what-if default, so cache keys and responses stay consistent
// with what the library would do on its own.
func clampSamples(n int) int {
	if n <= 0 {
		n = kspr.DefaultWhatIfSamples
	}
	if n > maxImpactSamples {
		n = maxImpactSamples
	}
	return n
}

// serveCached returns true after writing the cached response for key, with
// its Cached flag set via mark.
func (s *Server) serveCached(w http.ResponseWriter, key string, noCache bool, mark func(any) any) bool {
	if noCache {
		return false
	}
	v, ok := s.cache.Get(key)
	if !ok {
		return false
	}
	writeJSON(w, http.StatusOK, mark(v))
	return true
}

// ---- handlers ------------------------------------------------------------

// handleCompetitors serves GET /v1/impact:competitors: per-competitor
// attribution of the focal option's missing preference space.
func (s *Server) handleCompetitors(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	snap, ok := s.registry.Get(q.Get("dataset"))
	if !ok {
		writeError(w, http.StatusNotFound, "dataset %q not found", q.Get("dataset"))
		return
	}
	reqInfoFrom(r.Context()).noteDataset(snap)
	focal, err := strconv.Atoi(q.Get("focal"))
	if err != nil {
		writeError(w, http.StatusBadRequest, "invalid focal %q", q.Get("focal"))
		return
	}
	k, err := strconv.Atoi(q.Get("k"))
	if err != nil || k < 1 {
		writeError(w, http.StatusBadRequest, "invalid k %q", q.Get("k"))
		return
	}
	samples := 0
	if v := q.Get("samples"); v != "" {
		if samples, err = strconv.Atoi(v); err != nil {
			writeError(w, http.StatusBadRequest, "invalid samples %q", v)
			return
		}
	}
	samples = clampSamples(samples)
	var seed int64
	if v := q.Get("seed"); v != "" {
		if seed, err = strconv.ParseInt(v, 10, 64); err != nil {
			writeError(w, http.StatusBadRequest, "invalid seed %q", v)
			return
		}
	}
	algo, err := parseExactAlgorithm(q.Get("algorithm"))
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	noCache := q.Get("no_cache") == "1" || q.Get("no_cache") == "true"
	// EXPLAIN mode must actually run (and must not share its traced
	// response through the cache); see runKSPR.
	info := reqInfoFrom(r.Context())
	noCache = noCache || info.Debug()

	key := fmt.Sprintf("%s@%d|whatif.comp|f=%d|k=%d|a=%s|n=%d|seed=%d",
		snap.Name, snap.Generation, focal, k, algo.String(), samples, seed)
	if s.serveCached(w, key, noCache, func(v any) any {
		resp := *(v.(*competitorsResponse))
		resp.Cached = true
		return &resp
	}) {
		return
	}

	ctx, cancel := context.WithTimeout(r.Context(), s.timeout(0))
	defer cancel()
	val, err := s.pool.Submit(ctx, func(ctx context.Context) (any, error) {
		return snap.DB.Competitors(focal, k, samples, seed,
			kspr.WithAlgorithm(algo), kspr.WithContext(ctx), kspr.WithParallelism(1),
			kspr.WithoutGeometry(), kspr.WithTrace(info.Trace()))
	})
	if err != nil {
		writeError(w, errStatusCode(err), "%v", err)
		return
	}
	attr := val.(*kspr.Attribution)
	resp := &competitorsResponse{
		Dataset:    snap.Name,
		Generation: snap.Generation,
		Focal:      attr.Focal,
		K:          attr.K,
		Samples:    attr.Samples,
		Impact:     attr.Impact,
		Miss:       attr.Miss,
	}
	resp.Competitors = make([]competitorWire, len(attr.Competitors))
	for i, c := range attr.Competitors {
		cw := competitorWire{
			ID:            c.ID,
			StableID:      c.StableID,
			MissShare:     c.MissShare,
			PressureShare: c.PressureShare,
		}
		if c.ID < len(snap.Dataset.Labels) {
			cw.Label = snap.Dataset.Labels[c.ID]
		}
		resp.Competitors[i] = cw
	}
	if !noCache {
		s.cache.Put(key, resp)
	}
	s.metrics.AddWhatIf(1, 0)
	if info.Debug() {
		resp.Trace = traceToWire(info)
	}
	writeJSON(w, http.StatusOK, resp)
}

// handlePrice serves POST /v1/whatif:price: the minimal reprice of one
// attribute reaching a target impact.
func (s *Server) handlePrice(w http.ResponseWriter, r *http.Request) {
	var req priceRequest
	if !decodeBody(w, r, &req) {
		return
	}
	snap, ok := s.registry.Get(req.Dataset)
	if !ok {
		writeError(w, http.StatusNotFound, "dataset %q not found", req.Dataset)
		return
	}
	reqInfoFrom(r.Context()).noteDataset(snap)
	if req.K < 1 {
		writeError(w, http.StatusBadRequest, "k must be >= 1, got %d", req.K)
		return
	}
	algo, err := parseExactAlgorithm(req.Algorithm)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	req.Samples = clampSamples(req.Samples)
	// EXPLAIN mode bypasses the cache; see runKSPR.
	info := reqInfoFrom(r.Context())
	req.NoCache = req.NoCache || info.Debug()

	key := fmt.Sprintf("%s@%d|whatif.price|f=%d|k=%d|a=%s|attr=%d|t=%x|md=%x|e=%x|n=%d|seed=%d|vm=%t",
		snap.Name, snap.Generation, req.Focal, req.K, algo.String(), req.Attr,
		math.Float64bits(req.Target), math.Float64bits(req.MaxDelta), math.Float64bits(req.Eps),
		req.Samples, req.Seed, req.VolumeMetric)
	if !req.NoCache {
		if v, ok := s.cache.Get(key); ok {
			e := v.(*priceCacheEntry)
			if e.unreachable != "" {
				// The 422 is as deterministic as the success answer (same
				// generation, same sample set); serving it from cache stops
				// a repeated unreachable target from re-burning the full
				// bisection on a pool worker each time.
				writeError(w, http.StatusUnprocessableEntity, "%s", e.unreachable)
				return
			}
			resp := *e.resp
			resp.Cached = true
			writeJSON(w, http.StatusOK, &resp)
			return
		}
	}

	ctx, cancel := context.WithTimeout(r.Context(), s.timeout(req.TimeoutMs))
	defer cancel()
	val, err := s.pool.Submit(ctx, func(ctx context.Context) (any, error) {
		return snap.DB.PriceToTarget(req.Focal, req.K, kspr.RepriceSpec{
			Attr:         req.Attr,
			Target:       req.Target,
			MaxDelta:     req.MaxDelta,
			Eps:          req.Eps,
			Samples:      req.Samples,
			Seed:         req.Seed,
			VolumeMetric: req.VolumeMetric,
		}, kspr.WithAlgorithm(algo), kspr.WithContext(ctx), kspr.WithParallelism(1),
			kspr.WithoutGeometry(), kspr.WithTrace(info.Trace()))
	})
	if err != nil {
		// An unreachable target is a well-formed request whose answer is
		// "no such price": 422, not 400 — and deterministic, so cache it.
		if errors.Is(err, kspr.ErrTargetUnreachable) {
			if !req.NoCache {
				s.cache.Put(key, &priceCacheEntry{unreachable: err.Error()})
			}
			if rp, ok := val.(*kspr.Reprice); ok && rp != nil {
				s.metrics.AddWhatIf(uint64(rp.Stats.Probes), uint64(rp.Stats.Kept))
			}
			writeError(w, http.StatusUnprocessableEntity, "%v", err)
			return
		}
		writeError(w, errStatusCode(err), "%v", err)
		return
	}
	rp := val.(*kspr.Reprice)
	resp := &priceResponse{
		Dataset:     snap.Name,
		Generation:  snap.Generation,
		Focal:       rp.Focal,
		Attr:        rp.Attr,
		K:           rp.K,
		Target:      rp.Target,
		Delta:       rp.Delta,
		Value:       rp.Value,
		Impact:      rp.Impact,
		Baseline:    rp.Baseline,
		AlreadyMet:  rp.AlreadyMet,
		LowerDelta:  rp.LowerDelta,
		LowerImpact: rp.LowerImpact,
		Stats:       toStatsWire(rp.Stats),
	}
	if !req.NoCache {
		s.cache.Put(key, &priceCacheEntry{resp: resp})
	}
	s.metrics.AddWhatIf(uint64(rp.Stats.Probes), uint64(rp.Stats.Kept))
	if info.Debug() {
		resp.Trace = traceToWire(info)
	}
	writeJSON(w, http.StatusOK, resp)
}

// priceCacheEntry is what the cache stores for /v1/whatif:price: the
// success response, or the deterministic unreachable-target 422 message.
type priceCacheEntry struct {
	resp        *priceResponse
	unreachable string
}

// handleFrontier serves POST /v1/whatif:frontier: the impact-vs-price
// curve over an attribute grid.
func (s *Server) handleFrontier(w http.ResponseWriter, r *http.Request) {
	var req frontierRequest
	if !decodeBody(w, r, &req) {
		return
	}
	snap, ok := s.registry.Get(req.Dataset)
	if !ok {
		writeError(w, http.StatusNotFound, "dataset %q not found", req.Dataset)
		return
	}
	reqInfoFrom(r.Context()).noteDataset(snap)
	if req.K < 1 {
		writeError(w, http.StatusBadRequest, "k must be >= 1, got %d", req.K)
		return
	}
	if req.Steps == 0 {
		req.Steps = 16 // resolve the library default BEFORE the cap check
	}
	if req.Steps > s.cfg.MaxBatch {
		writeError(w, http.StatusBadRequest, "frontier of %d steps exceeds limit %d", req.Steps, s.cfg.MaxBatch)
		return
	}
	algo, err := parseExactAlgorithm(req.Algorithm)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	req.Samples = clampSamples(req.Samples)
	// EXPLAIN mode bypasses the cache; see runKSPR.
	info := reqInfoFrom(r.Context())
	req.NoCache = req.NoCache || info.Debug()

	key := fmt.Sprintf("%s@%d|whatif.frontier|f=%d|k=%d|a=%s|attr=%d|min=%x|max=%x|st=%d|n=%d|seed=%d|vm=%t",
		snap.Name, snap.Generation, req.Focal, req.K, algo.String(), req.Attr,
		math.Float64bits(req.Min), math.Float64bits(req.Max), req.Steps,
		req.Samples, req.Seed, req.VolumeMetric)
	if s.serveCached(w, key, req.NoCache, func(v any) any {
		resp := *(v.(*frontierResponse))
		resp.Cached = true
		return &resp
	}) {
		return
	}

	ctx, cancel := context.WithTimeout(r.Context(), s.timeout(req.TimeoutMs))
	defer cancel()
	val, err := s.pool.Submit(ctx, func(ctx context.Context) (any, error) {
		return snap.DB.Frontier(req.Focal, req.K, kspr.FrontierSpec{
			Attr:         req.Attr,
			Min:          req.Min,
			Max:          req.Max,
			Steps:        req.Steps,
			Samples:      req.Samples,
			Seed:         req.Seed,
			VolumeMetric: req.VolumeMetric,
		}, kspr.WithAlgorithm(algo), kspr.WithContext(ctx), kspr.WithParallelism(1),
			kspr.WithoutGeometry(), kspr.WithTrace(info.Trace()))
	})
	if err != nil {
		writeError(w, errStatusCode(err), "%v", err)
		return
	}
	curve := val.(*kspr.FrontierCurve)
	resp := &frontierResponse{
		Dataset:    snap.Name,
		Generation: snap.Generation,
		Focal:      curve.Focal,
		Attr:       curve.Attr,
		K:          curve.K,
		Stats:      toStatsWire(curve.Stats),
	}
	resp.Points = make([]frontierPointWire, len(curve.Points))
	for i, p := range curve.Points {
		resp.Points[i] = frontierPointWire{
			Value:   p.Value,
			Delta:   p.Delta,
			Impact:  p.Impact,
			Regions: p.Regions,
			Kept:    p.Kept,
		}
	}
	if !req.NoCache {
		s.cache.Put(key, resp)
	}
	s.metrics.AddWhatIf(uint64(curve.Stats.Probes), uint64(curve.Stats.Kept))
	if info.Debug() {
		resp.Trace = traceToWire(info)
	}
	writeJSON(w, http.StatusOK, resp)
}
