package server

// This file is the time dimension of the observability stack: a sampler
// goroutine that snapshots the Metrics counters into an obs.TimeSeries
// ring every HistoryInterval, derives rates (QPS, error rate, 429 rate,
// cache hit rate) and windowed per-class p99s from the raw counters,
// evaluates the SLO burn-rate engine over the ring, and serves the result
// on GET /v1/debug:history (the series) and GET /v1/debug:health (the
// scored verdict a replica router consumes).

import (
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/obs"
)

// defaultSLOP99 bounds per-class p99 latency when Config.SLOP99 is unset —
// aligned with defaultFlightSlow so an SLO-breaching request is also
// flight-capture-worthy.
const defaultSLOP99 = 500 * time.Millisecond

// defaultSLOAvailability is the stock availability target (three nines).
const defaultSLOAvailability = 0.999

// sloClassP99Window is the trailing window the derived per-class p99
// series are computed over.
const sloClassP99Window = 5 * time.Minute

// endpointClasses maps instrumented endpoint names to the endpoint class
// their latency SLO is judged under. Meta endpoints (health probes, debug
// reads, metrics scrapes) are deliberately unclassified: their latency is
// nobody's user experience.
var endpointClasses = map[string]string{
	"kspr":               "query",
	"kspr.batch":         "query",
	"topk":               "query",
	"skyline":            "query",
	"impact":             "query",
	"impact.competitors": "query",
	"whatif.price":       "query",
	"whatif.frontier":    "query",
	"datasets.mutate":    "mutate",
	"datasets.load":      "mutate",
	"datasets.unload":    "mutate",
}

// sloClasses is the deterministic iteration order of the classes above.
var sloClasses = []string{"query", "mutate"}

// epSeriesNames precomputes one endpoint's history series names so the
// per-tick point building never formats strings.
type epSeriesNames struct {
	requests string
	errors   string
	p50      string
	p99      string
}

// classSeriesNames precomputes one class's aggregate counter series: total
// requests plus one cumulative count per latency bucket (obs.
// DefaultLatencyBuckets layout, +Inf last).
type classSeriesNames struct {
	requests string
	buckets  []string
	p99      string // derived windowed-p99 gauge series
}

// sampler owns the telemetry history: the ring, the SLO engine, the
// reusable scratch buffers, and the background goroutine that ticks them.
// All cross-goroutine state is behind the ring's own lock or sampler.mu.
type sampler struct {
	srv   *Server
	ts    *obs.TimeSeries
	slo   *obs.SLOEngine
	rt    *obs.RuntimeSampler
	build obs.BuildInfo

	// Reusable per-tick scratch: the metrics sample, the raw/derived point
	// slices, precomputed series names, and per-class bucket accumulators.
	sample    MetricsSample
	raw       []obs.SamplePoint
	derived   []obs.SamplePoint
	epNames   map[string]*epSeriesNames
	clsNames  map[string]*classSeriesNames
	clsCounts map[string][]uint64
	clsTotals map[string]uint64
	deltas    []uint64 // class bucket deltas scratch for the p99 window

	mu      sync.Mutex
	verdict obs.HealthVerdict

	stop chan struct{}
	done chan struct{}
}

// newSampler wires the ring and the SLO engine from the server config and
// takes the first tick synchronously, so a freshly constructed server
// already has one sample of every series.
func newSampler(s *Server) *sampler {
	cfg := s.cfg
	var objectives []obs.Objective
	avail := cfg.SLOAvailability
	if avail == 0 {
		avail = defaultSLOAvailability
	}
	if avail < 0 {
		avail = 0 // negative disables the availability objective
	}
	bound := cfg.SLOP99
	if bound == 0 {
		bound = defaultSLOP99
	}
	if bound < 0 {
		bound = 0 // negative disables latency objectives
	}
	objectives = obs.DefaultObjectives(avail, bound, sloClasses)
	sp := &sampler{
		srv:       s,
		ts:        obs.NewTimeSeries(cfg.HistoryInterval, cfg.HistoryRetention),
		slo:       obs.NewSLOEngine(objectives, nil),
		rt:        obs.NewRuntimeSampler(),
		build:     obs.ReadBuildInfo(),
		epNames:   map[string]*epSeriesNames{},
		clsNames:  map[string]*classSeriesNames{},
		clsCounts: map[string][]uint64{},
		clsTotals: map[string]uint64{},
		deltas:    make([]uint64, len(obs.DefaultLatencyBuckets)+1),
		verdict:   obs.Verdict(nil),
		stop:      make(chan struct{}),
		done:      make(chan struct{}),
	}
	for _, class := range sloClasses {
		names := &classSeriesNames{
			requests: "class:" + class + ":requests",
			p99:      "p99_ms:" + class,
		}
		for i := 0; i <= len(obs.DefaultLatencyBuckets); i++ {
			names.buckets = append(names.buckets, "class:"+class+":le"+strconv.Itoa(i))
		}
		sp.clsNames[class] = names
		sp.clsCounts[class] = make([]uint64, len(obs.DefaultLatencyBuckets)+1)
	}
	sp.tick(time.Now())
	return sp
}

// run is the sampler goroutine: one tick per interval until close.
func (sp *sampler) run() {
	defer close(sp.done)
	ticker := time.NewTicker(sp.ts.Interval())
	defer ticker.Stop()
	for {
		select {
		case <-sp.stop:
			return
		case now := <-ticker.C:
			sp.tick(now)
		}
	}
}

// close stops the sampler goroutine and waits for it to exit.
func (sp *sampler) close() {
	if sp == nil {
		return
	}
	close(sp.stop)
	<-sp.done
}

// latestVerdict returns the verdict from the most recent tick.
func (sp *sampler) latestVerdict() obs.HealthVerdict {
	sp.mu.Lock()
	defer sp.mu.Unlock()
	return sp.verdict
}

// tick takes one sample: raw counters and gauges into the ring, derived
// rates amended onto the same tick, then an SLO evaluation over the
// updated ring.
func (sp *sampler) tick(now time.Time) {
	sp.recordTick(now)
	sp.evaluateSLO(now)
}

// recordTick is the ring half of a tick. It is allocation-free in steady
// state (no new endpoints since the previous tick) — pinned by
// TestRecordTickZeroAllocs.
func (sp *sampler) recordTick(now time.Time) {
	s := sp.srv
	s.metrics.SampleInto(&sp.sample)
	rt := sp.rt.Sample()
	cache := s.cache.Stats()

	sp.raw = sp.raw[:0]
	addC := func(name string, v float64) {
		sp.raw = append(sp.raw, obs.SamplePoint{Name: name, Kind: obs.KindCounter, Value: v})
	}
	addG := func(name string, v float64) {
		sp.raw = append(sp.raw, obs.SamplePoint{Name: name, Kind: obs.KindGauge, Value: v})
	}
	addC("requests_total", float64(sp.sample.Requests))
	addC("errors_total", float64(sp.sample.Errors))
	addC("responses_429_total", float64(sp.sample.Resp429))
	addC("cache_hits_total", float64(cache.Hits))
	addC("cache_misses_total", float64(cache.Misses))
	addC("mutation_batches_total", float64(sp.sample.MutationBatches))
	addC("mutations_total", float64(sp.sample.MutationsTotal))
	addC("whatif_probes_total", float64(sp.sample.WhatIfProbes))
	addC("whatif_kept_total", float64(sp.sample.WhatIfKept))
	addG("qps_1m", sp.sample.QPS)
	addG("latency_p50_ms", sp.sample.LatP50Ms)
	addG("latency_p95_ms", sp.sample.LatP95Ms)
	addG("latency_p99_ms", sp.sample.LatP99Ms)
	addG("pool_depth", float64(s.pool.Depth()))
	addG("cpu_slots_in_use", float64(s.cpu.InUse()))
	addG("cache_entries", float64(cache.Entries))
	addG("datasets", float64(s.registry.Count()))
	addG("goroutines", float64(rt.Goroutines))
	addG("heap_inuse_bytes", float64(rt.HeapInuseBytes))
	addG("gc_pause_p99_ms", rt.GCPauseP99Ms)
	addG("uptime_seconds", sp.sample.UptimeSeconds)

	// Per-endpoint series plus per-class aggregation for the SLO windows.
	for _, class := range sloClasses {
		counts := sp.clsCounts[class]
		for i := range counts {
			counts[i] = 0
		}
		sp.clsTotals[class] = 0
	}
	for i := range sp.sample.Endpoints {
		row := &sp.sample.Endpoints[i]
		names := sp.epNames[row.Name]
		if names == nil {
			names = &epSeriesNames{
				requests: "ep:" + row.Name + ":requests",
				errors:   "ep:" + row.Name + ":errors",
				p50:      "ep:" + row.Name + ":p50_ms",
				p99:      "ep:" + row.Name + ":p99_ms",
			}
			sp.epNames[row.Name] = names
		}
		addC(names.requests, float64(row.Count))
		addC(names.errors, float64(row.Errors))
		addG(names.p50, row.P50Ms)
		addG(names.p99, row.P99Ms)
		if class := endpointClasses[row.Name]; class != "" {
			counts := sp.clsCounts[class]
			for b, c := range row.Buckets {
				counts[b] += c
			}
			sp.clsTotals[class] += row.Count
		}
	}
	for _, class := range sloClasses {
		names := sp.clsNames[class]
		addC(names.requests, float64(sp.clsTotals[class]))
		for b, c := range sp.clsCounts[class] {
			addC(names.buckets[b], float64(c))
		}
	}
	sp.ts.Record(now, sp.raw)

	// Derived series: rates over the last couple of intervals and windowed
	// per-class p99s, amended onto the tick just recorded.
	sp.derived = sp.derived[:0]
	addD := func(name string, v float64) {
		sp.derived = append(sp.derived, obs.SamplePoint{Name: name, Kind: obs.KindGauge, Value: v})
	}
	rateWin := 2*sp.ts.Interval() + time.Second
	dreq, span, okReq := sp.ts.DeltaSince("requests_total", rateWin, now)
	if okReq && span > 0 {
		addD("qps", dreq/span.Seconds())
		if dreq > 0 {
			derr, _, _ := sp.ts.DeltaSince("errors_total", rateWin, now)
			d429, _, _ := sp.ts.DeltaSince("responses_429_total", rateWin, now)
			addD("error_rate", clamp01((derr-d429)/dreq))
			addD("rate_429", clamp01(d429/dreq))
		} else {
			addD("error_rate", 0)
			addD("rate_429", 0)
		}
	}
	dh, _, okH := sp.ts.DeltaSince("cache_hits_total", rateWin, now)
	dm, _, okM := sp.ts.DeltaSince("cache_misses_total", rateWin, now)
	if okH && okM && dh+dm > 0 {
		addD("cache_hit_rate", clamp01(dh/(dh+dm)))
	}
	for _, class := range sloClasses {
		if p99, ok := sp.classP99Ms(class, sloClassP99Window, now); ok {
			addD(sp.clsNames[class].p99, p99)
		}
	}
	sp.ts.Amend(sp.derived)
}

// evaluateSLO is the burn-rate half of a tick: evaluate every objective
// over the updated ring, publish the verdict, and journal breach
// transitions tagged with the generation in force.
func (sp *sampler) evaluateSLO(now time.Time) {
	statuses, events := sp.slo.Evaluate(now, sp.badFraction)
	verdict := obs.Verdict(statuses)
	sp.mu.Lock()
	sp.verdict = verdict
	sp.mu.Unlock()
	for _, ev := range events {
		sp.journalBreach(ev)
	}
}

// classP99Ms estimates a class's p99 over the trailing window from the
// class bucket counter deltas. ok=false until the window holds two ticks
// of class traffic.
func (sp *sampler) classP99Ms(class string, window time.Duration, now time.Time) (float64, bool) {
	names := sp.clsNames[class]
	any := false
	var total uint64
	for i, name := range names.buckets {
		sp.deltas[i] = 0
		d, _, ok := sp.ts.DeltaSince(name, window, now)
		if !ok || d <= 0 {
			continue
		}
		any = true
		sp.deltas[i] = uint64(d)
		total += uint64(d)
	}
	if !any || total == 0 {
		return 0, false
	}
	return bucketQuantileMs(sp.deltas, 0.99), true
}

// badFraction is the SLO engine's data source: the fraction of bad service
// over a trailing window, read from the ring's counter deltas.
//
//   - availability: (errors - 429s) / requests. Load shedding is honest
//     backpressure the server chose, not broken service — it burns the
//     latency budget of whoever retries, never the availability budget.
//   - latency: the fraction of class requests over the objective's p99
//     bound, from the class bucket deltas (the bound rounds down to a
//     bucket boundary).
func (sp *sampler) badFraction(o obs.Objective, window time.Duration, now time.Time) (float64, bool) {
	switch o.Kind {
	case obs.SLOAvailability:
		dreq, _, ok := sp.ts.DeltaSince("requests_total", window, now)
		if !ok || dreq <= 0 {
			return 0, false
		}
		derr, _, _ := sp.ts.DeltaSince("errors_total", window, now)
		d429, _, _ := sp.ts.DeltaSince("responses_429_total", window, now)
		return clamp01((derr - d429) / dreq), true
	case obs.SLOLatency:
		names := sp.clsNames[o.Class]
		if names == nil {
			return 0, false
		}
		boundSec := o.Bound.Seconds()
		var total, good float64
		any := false
		for i, name := range names.buckets {
			d, _, ok := sp.ts.DeltaSince(name, window, now)
			if !ok || d <= 0 {
				continue
			}
			any = true
			total += d
			if i < len(obs.DefaultLatencyBuckets) && obs.DefaultLatencyBuckets[i] <= boundSec {
				good += d
			}
		}
		if !any || total <= 0 {
			return 0, false
		}
		return clamp01(1 - good/total), true
	}
	return 0, false
}

// journalBreach writes one SLO transition into the lifecycle journal.
func (sp *sampler) journalBreach(ev obs.BreachEvent) {
	gen := sp.srv.registry.MaxGeneration()
	if ev.Resolved {
		sp.srv.journal.Append(obs.JournalEvent{
			Type:       obs.EventSLOResolve,
			Generation: gen,
			Detail:     map[string]any{"objective": ev.Objective.Name},
		})
		return
	}
	sp.srv.journal.Append(obs.JournalEvent{
		Type:       obs.EventSLOBurn,
		Generation: gen,
		Detail: map[string]any{
			"objective":  ev.Objective.Name,
			"kind":       ev.Objective.Kind,
			"target":     ev.Objective.Target,
			"window":     windowLabel(ev.Window.Short) + "/" + windowLabel(ev.Window.Long),
			"threshold":  ev.Window.Threshold,
			"burn_short": ev.BurnShort,
			"burn_long":  ev.BurnLong,
		},
	})
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// ---- HTTP surface --------------------------------------------------------

// defaultHistorySeries is the headline set GET /v1/debug:history serves
// when no ?series= selector is given.
var defaultHistorySeries = []string{
	"qps", "error_rate", "rate_429", "cache_hit_rate",
	"latency_p99_ms", "p99_ms:query", "p99_ms:mutate",
	"goroutines", "heap_inuse_bytes",
}

// historyResponse is the GET /v1/debug:history payload: aligned columns of
// the selected series (null where a series missed a tick), plus the full
// series catalogue for discovery.
type historyResponse struct {
	IntervalMs  float64  `json:"interval_ms"`
	Samples     int      `json:"samples"`
	TimesUnixMs []int64  `json:"times_unix_ms"`
	SeriesNames []string `json:"series_names"`
	// Series maps each requested name to one value per entry of
	// TimesUnixMs; unknown or not-yet-populated series are all-null.
	Series map[string][]*float64 `json:"series"`
}

// handleDebugHistory serves the telemetry history ring. ?series= selects a
// comma-separated subset (default: the headline rate/latency set),
// ?since_sec= bounds how far back to read, ?step_sec= downsamples to one
// sample per step (keeping the last sample of each step, so counter deltas
// stay exact). Each bad parameter is its own 400.
func (s *Server) handleDebugHistory(w http.ResponseWriter, r *http.Request) {
	if s.sampler == nil {
		writeError(w, http.StatusNotFound, "telemetry history disabled (HistoryInterval < 0)")
		return
	}
	q := r.URL.Query()
	names := defaultHistorySeries
	if raw := q.Get("series"); raw != "" {
		names = strings.Split(raw, ",")
		for _, n := range names {
			if strings.TrimSpace(n) == "" {
				writeError(w, http.StatusBadRequest, "invalid series=%q: empty name in list", raw)
				return
			}
		}
	}
	ts := s.sampler.ts
	since := time.Now().Add(-time.Duration(ts.Capacity()) * ts.Interval())
	if raw := q.Get("since_sec"); raw != "" {
		v, err := strconv.ParseFloat(raw, 64)
		if err != nil || v <= 0 {
			writeError(w, http.StatusBadRequest, "invalid since_sec=%q", raw)
			return
		}
		since = time.Now().Add(-time.Duration(v * float64(time.Second)))
	}
	var step time.Duration
	if raw := q.Get("step_sec"); raw != "" {
		v, err := strconv.ParseFloat(raw, 64)
		if err != nil || v < 0 {
			writeError(w, http.StatusBadRequest, "invalid step_sec=%q", raw)
			return
		}
		step = time.Duration(v * float64(time.Second))
	}
	res := ts.Range(names, since, step)
	resp := historyResponse{
		IntervalMs:  float64(ts.Interval()) / float64(time.Millisecond),
		Samples:     len(res.Times),
		TimesUnixMs: make([]int64, len(res.Times)),
		SeriesNames: ts.SeriesNames(),
		Series:      make(map[string][]*float64, len(names)),
	}
	for i, t := range res.Times {
		resp.TimesUnixMs[i] = t.UnixMilli()
	}
	for name, col := range res.Values {
		out := make([]*float64, len(col))
		for i := range col {
			if col[i] == col[i] { // not NaN
				v := col[i]
				out[i] = &v
			}
		}
		resp.Series[name] = out
	}
	writeJSON(w, http.StatusOK, resp)
}

// healthHistoryMeta describes the history ring inside the health verdict.
type healthHistoryMeta struct {
	IntervalMs  float64 `json:"interval_ms"`
	RetentionMs float64 `json:"retention_ms"`
	Samples     int     `json:"samples"`
	Series      int     `json:"series"`
	Ticks       uint64  `json:"ticks"`
}

// healthResponse is the GET /v1/debug:health payload: the machine-readable
// verdict a scatter-gather router scores replicas by.
type healthResponse struct {
	Healthy        bool              `json:"healthy"`
	Score          float64           `json:"score"`
	Status         string            `json:"status"`
	SLOs           []obs.SLOStatus   `json:"slos"`
	Ready          bool              `json:"ready"`
	Datasets       int               `json:"datasets"`
	IndexWarm      map[string]bool   `json:"index_warm"`
	Generation     uint64            `json:"generation"`
	UptimeSeconds  float64           `json:"uptime_seconds"`
	Build          obs.BuildInfo     `json:"build"`
	History        healthHistoryMeta `json:"history"`
	JournalLastSeq uint64            `json:"journal_last_seq"`
}

// handleDebugHealth serves the scored health verdict: overall score in
// [0,1] (min over per-SLO scores), per-SLO burn rates, plus the readiness
// and index facts a router needs alongside them.
func (s *Server) handleDebugHealth(w http.ResponseWriter, r *http.Request) {
	if s.sampler == nil {
		writeError(w, http.StatusNotFound, "telemetry history disabled (HistoryInterval < 0)")
		return
	}
	v := s.sampler.latestVerdict()
	if v.SLOs == nil {
		v.SLOs = []obs.SLOStatus{}
	}
	infos := s.registry.List()
	warm := make(map[string]bool, len(infos))
	var gen uint64
	for _, info := range infos {
		warm[info.Name] = info.IndexWarm
		if info.Generation > gen {
			gen = info.Generation
		}
	}
	ts := s.sampler.ts
	writeJSON(w, http.StatusOK, healthResponse{
		Healthy:       v.Healthy,
		Score:         v.Score,
		Status:        v.Status,
		SLOs:          v.SLOs,
		Ready:         s.ready.Load(),
		Datasets:      len(infos),
		IndexWarm:     warm,
		Generation:    gen,
		UptimeSeconds: time.Since(s.metrics.start).Seconds(),
		Build:         s.sampler.build,
		History: healthHistoryMeta{
			IntervalMs:  float64(ts.Interval()) / float64(time.Millisecond),
			RetentionMs: float64(ts.Interval()) / float64(time.Millisecond) * float64(ts.Capacity()),
			Samples:     ts.Len(),
			Series:      len(ts.SeriesNames()),
			Ticks:       ts.Ticks(),
		},
		JournalLastSeq: s.journal.LastSeq(),
	})
}
