package server

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
)

// ErrPoolClosed is returned by Submit after Close has begun.
var ErrPoolClosed = errors.New("server: worker pool closed")

// Pool is a bounded worker pool: a fixed number of workers drain a bounded
// queue. Submit blocks while the queue is full (providing natural
// backpressure toward the HTTP layer) and honours the request context both
// while queued and while running — a task whose context expires before a
// worker picks it up is dropped without doing any work.
type Pool struct {
	tasks   chan *poolTask
	wg      sync.WaitGroup
	mu      sync.RWMutex
	closed  bool
	queued  atomic.Int64
	running atomic.Int64
	workers int
}

type poolTask struct {
	ctx context.Context
	fn  func(context.Context) (any, error)
	res chan poolResult
}

type poolResult struct {
	val any
	err error
}

// NewPool starts workers goroutines over a queue of the given length.
// Non-positive arguments default to 4 workers and a queue of 64.
func NewPool(workers, queue int) *Pool {
	if workers <= 0 {
		workers = 4
	}
	if queue <= 0 {
		queue = 64
	}
	p := &Pool{tasks: make(chan *poolTask, queue), workers: workers}
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go p.worker()
	}
	return p
}

func (p *Pool) worker() {
	defer p.wg.Done()
	for t := range p.tasks {
		p.queued.Add(-1)
		select {
		case <-t.ctx.Done():
			// The caller gave up while the task sat in the queue; it has
			// already returned, so just record the outcome.
			t.res <- poolResult{err: t.ctx.Err()}
			continue
		default:
		}
		p.running.Add(1)
		val, err := t.fn(t.ctx)
		p.running.Add(-1)
		t.res <- poolResult{val: val, err: err}
	}
}

// Submit runs fn on a pool worker and returns its result. It blocks until
// the task completes, ctx is done, or the pool shuts down. When ctx expires
// first, Submit returns ctx.Err(); if the task was already running, the
// worker finishes it in the background (fn observes the same ctx and is
// expected to abandon work promptly).
func (p *Pool) Submit(ctx context.Context, fn func(context.Context) (any, error)) (any, error) {
	t := &poolTask{ctx: ctx, fn: fn, res: make(chan poolResult, 1)}

	p.mu.RLock()
	if p.closed {
		p.mu.RUnlock()
		return nil, ErrPoolClosed
	}
	// Count the task before it becomes visible to workers, so the paired
	// decrement on receipt can never drive the gauge negative.
	p.queued.Add(1)
	select {
	case p.tasks <- t:
		p.mu.RUnlock()
	case <-ctx.Done():
		p.queued.Add(-1)
		p.mu.RUnlock()
		return nil, ctx.Err()
	}

	select {
	case r := <-t.res:
		return r.val, r.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// Depth reports queued plus running tasks (the /metrics pool depth).
func (p *Pool) Depth() int64 { return p.queued.Load() + p.running.Load() }

// Workers reports the worker count.
func (p *Pool) Workers() int { return p.workers }

// Close drains the pool gracefully: no new submissions are accepted,
// queued tasks still execute, and Close returns when every worker has
// exited.
func (p *Pool) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		p.wg.Wait()
		return
	}
	p.closed = true
	close(p.tasks)
	p.mu.Unlock()
	p.wg.Wait()
}
