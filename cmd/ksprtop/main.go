// Command ksprtop is a live terminal dashboard for a running ksprd: it
// polls GET /v1/debug:health and GET /v1/debug:history and renders the
// health verdict, per-SLO burn rates, and block-ramp sparklines of the
// headline telemetry series — no TUI dependency, just ANSI escapes.
//
//	ksprtop                                  # watch 127.0.0.1:8080
//	ksprtop -addr http://host:8080 -window 30m
//	ksprtop -once                            # one frame, plain text, exit
//
// The exit status of -once is 0 when the verdict is healthy and 1 when
// any SLO is breaching, so it doubles as a scriptable health probe.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"
)

func main() {
	var (
		addr     = flag.String("addr", "http://127.0.0.1:8080", "base URL of the ksprd to watch")
		interval = flag.Duration("interval", 2*time.Second, "refresh interval")
		window   = flag.Duration("window", 15*time.Minute, "history window to plot")
		width    = flag.Int("width", 100, "frame width in columns")
		series   = flag.String("series", "", "comma-separated series override (default: the server's headline set)")
		once     = flag.Bool("once", false, "render a single plain-text frame and exit (exit 1 when unhealthy)")
	)
	flag.Parse()
	if *interval <= 0 || *window <= 0 || *width < 40 {
		fmt.Fprintln(os.Stderr, "ksprtop: need -interval > 0, -window > 0, -width >= 40")
		os.Exit(2)
	}

	cl := client{
		base:   strings.TrimRight(*addr, "/"),
		window: *window,
		series: *series,
		http:   &http.Client{Timeout: 10 * time.Second},
	}
	r := renderer{width: *width, color: !*once}

	if *once {
		h, hist, err := cl.poll()
		if err != nil {
			fmt.Fprintln(os.Stderr, "ksprtop:", err)
			os.Exit(1)
		}
		fmt.Print(r.frame(cl.base, h, hist))
		if !h.Healthy {
			os.Exit(1)
		}
		return
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	ticker := time.NewTicker(*interval)
	defer ticker.Stop()
	for {
		h, hist, err := cl.poll()
		// Clear screen + home between frames; errors render in-place so a
		// restarting server doesn't kill the watch.
		fmt.Print("\x1b[2J\x1b[H")
		if err != nil {
			fmt.Printf("ksprtop %s: %v (retrying every %s)\n", cl.base, err, *interval)
		} else {
			fmt.Print(r.frame(cl.base, h, hist))
		}
		select {
		case <-sig:
			fmt.Println()
			return
		case <-ticker.C:
		}
	}
}

// client fetches the two debug payloads ksprtop renders.
type client struct {
	base   string
	window time.Duration
	series string
	http   *http.Client
}

// poll fetches health and history in sequence (health first: when it
// 404s the server has history disabled and there is nothing to watch).
func (c client) poll() (*healthWire, *historyWire, error) {
	var h healthWire
	if err := c.getJSON("/v1/debug:health", &h); err != nil {
		return nil, nil, err
	}
	hq := fmt.Sprintf("/v1/debug:history?since_sec=%g", c.window.Seconds())
	if c.series != "" {
		hq += "&series=" + c.series
	}
	var hist historyWire
	if err := c.getJSON(hq, &hist); err != nil {
		return nil, nil, err
	}
	return &h, &hist, nil
}

// getJSON fetches one endpoint and decodes the body, surfacing non-200s
// with their body text (the server's error payloads are short JSON).
func (c client) getJSON(path string, out any) error {
	resp, err := c.http.Get(c.base + path)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var msg strings.Builder
		_ = json.NewDecoder(resp.Body).Decode(&struct{}{}) // drain politely
		fmt.Fprintf(&msg, "%s: HTTP %d", path, resp.StatusCode)
		return fmt.Errorf("%s", msg.String())
	}
	return json.NewDecoder(resp.Body).Decode(out)
}
