package main

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/server"
)

// TestPollAgainstLiveServer drives the ksprtop client against a
// self-hosted serving stack and renders a real frame end to end.
func TestPollAgainstLiveServer(t *testing.T) {
	srv := server.NewServer(server.Config{})
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(func() { hs.Close(); srv.Close() })

	// Real traffic so the history has non-trivial series.
	for i := 0; i < 10; i++ {
		resp, err := http.Get(hs.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}

	cl := client{
		base:   hs.URL,
		window: 15 * time.Minute,
		http:   &http.Client{Timeout: 5 * time.Second},
	}
	h, hist, err := cl.poll()
	if err != nil {
		t.Fatal(err)
	}
	if !h.Healthy {
		t.Fatalf("fresh server unhealthy: %+v", h)
	}
	if hist.Samples < 1 {
		t.Fatalf("history has no samples: %+v", hist)
	}
	frame := renderer{width: 100, color: false}.frame(cl.base, h, hist)
	for _, want := range []string{"ksprtop", "HEALTHY", "availability", "qps"} {
		if !strings.Contains(frame, want) {
			t.Errorf("live frame missing %q:\n%s", want, frame)
		}
	}

	// Series override narrows the plot to the requested columns.
	cl.series = "goroutines"
	_, hist, err = cl.poll()
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := hist.Series["goroutines"]; !ok || len(hist.Series) != 1 {
		t.Fatalf("series override ignored: %v", hist.Series)
	}
}

// TestPollDisabledHistory reports a useful error when the server runs
// without the sampler.
func TestPollDisabledHistory(t *testing.T) {
	srv := server.NewServer(server.Config{HistoryInterval: -1})
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(func() { hs.Close(); srv.Close() })

	cl := client{base: hs.URL, window: time.Minute, http: &http.Client{Timeout: 5 * time.Second}}
	_, _, err := cl.poll()
	if err == nil || !strings.Contains(err.Error(), "404") {
		t.Fatalf("err = %v, want HTTP 404", err)
	}
}
