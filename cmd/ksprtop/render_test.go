package main

import (
	"math"
	"strings"
	"testing"
	"time"
)

func fptr(v float64) *float64 { return &v }

func TestSparklineShapes(t *testing.T) {
	// Monotone ramp uses the lowest and highest glyphs at the ends.
	s := sparkline([]float64{0, 1, 2, 3, 4, 5, 6, 7}, 8)
	if [](rune)([]rune(s))[0] != sparkGlyphs[0] {
		t.Fatalf("ramp start = %q, want %q", s, string(sparkGlyphs[0]))
	}
	if r := []rune(s); r[len(r)-1] != sparkGlyphs[len(sparkGlyphs)-1] {
		t.Fatalf("ramp end = %q", s)
	}
	// Flat series stays at the floor glyph.
	flat := sparkline([]float64{5, 5, 5, 5}, 4)
	if flat != strings.Repeat(string(sparkGlyphs[0]), 4) {
		t.Fatalf("flat = %q", flat)
	}
	// NaN gaps render as spaces.
	gap := sparkline([]float64{1, math.NaN(), 3}, 3)
	if []rune(gap)[1] != ' ' {
		t.Fatalf("gap = %q, want space in the middle", gap)
	}
	// Short series right-align so "now" is the last column.
	short := sparkline([]float64{1, 8}, 6)
	r := []rune(short)
	if r[0] != ' ' || r[5] != sparkGlyphs[len(sparkGlyphs)-1] {
		t.Fatalf("short = %q, want right-aligned", short)
	}
	// Empty and zero-width are safe.
	if got := sparkline(nil, 4); got != "    " {
		t.Fatalf("empty = %q", got)
	}
	if got := sparkline([]float64{1}, 0); got != "" {
		t.Fatalf("zero width = %q", got)
	}
}

func TestResampleKeepsLastPerColumn(t *testing.T) {
	// 6 values into 3 columns: the last value of each pair survives.
	got := resample([]float64{1, 2, 3, 4, 5, 6}, 3)
	want := []float64{2, 4, 6}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("resample = %v, want %v", got, want)
		}
	}
}

func TestFmtValue(t *testing.T) {
	cases := map[float64]string{
		0:       "0",
		3:       "3",
		250:     "250",
		15000:   "15.0k",
		2500000: "2.50M",
		3.5e9:   "3.50G",
		0.123:   "0.123",
	}
	for in, want := range cases {
		if got := fmtValue(in); got != want {
			t.Errorf("fmtValue(%v) = %q, want %q", in, got, want)
		}
	}
	if got := fmtValue(math.NaN()); got != "-" {
		t.Errorf("fmtValue(NaN) = %q", got)
	}
}

func TestFmtDurationAndWindow(t *testing.T) {
	if got := fmtDuration(90 * time.Second); got != "1m30s" {
		t.Errorf("fmtDuration(90s) = %q", got)
	}
	if got := fmtDuration(3*time.Hour + 5*time.Minute); got != "3h05m" {
		t.Errorf("fmtDuration(3h5m) = %q", got)
	}
	if got := fmtWindow(5 * 60 * 1000); got != "5m" {
		t.Errorf("fmtWindow(5m) = %q", got)
	}
	if got := fmtWindow(6 * 3600 * 1000); got != "6h" {
		t.Errorf("fmtWindow(6h) = %q", got)
	}
}

func TestFrameRendersVerdictAndSeries(t *testing.T) {
	h := &healthWire{
		Healthy:       false,
		Score:         0.25,
		Status:        "breaching",
		Ready:         true,
		Datasets:      2,
		Generation:    7,
		UptimeSeconds: 125,
		Build:         buildWire{Version: "abc123", Go: "go1.24"},
		SLOs: []sloWire{{
			Name:      "availability",
			Breaching: true,
			Score:     0.25,
			Windows: []burnWire{{
				ShortMs: 300000, LongMs: 3600000, Threshold: 14.4,
				BurnShort: 30, BurnLong: 20, Breaching: true,
			}},
		}},
	}
	hist := &historyWire{
		IntervalMs:  1000,
		Samples:     3,
		TimesUnixMs: []int64{1000, 2000, 3000},
		Series: map[string][]*float64{
			"qps":        {fptr(10), fptr(20), fptr(30)},
			"error_rate": {nil, fptr(0.5), fptr(1)},
		},
	}
	r := renderer{width: 90, color: false}
	frame := r.frame("http://x:1", h, hist)
	for _, want := range []string{
		"BREACHING", "score 0.250", "gen 7", "datasets 2", "abc123",
		"availability", "5m/1h", // SLO row window labels
		"BRN", "30/20",
		"qps", "error_rate",
		"3 samples",
	} {
		if !strings.Contains(frame, want) {
			t.Errorf("frame missing %q:\n%s", want, frame)
		}
	}
	if strings.Contains(frame, "\x1b[") {
		t.Fatal("color=false frame contains ANSI escapes")
	}

	// Healthy + colored frame flips the badge and paints it.
	h.Healthy, h.Status, h.SLOs[0].Breaching = true, "healthy", false
	colored := renderer{width: 90, color: true}.frame("http://x:1", h, hist)
	if !strings.Contains(colored, "HEALTHY") || !strings.Contains(colored, ansiGreen) {
		t.Fatalf("healthy colored frame wrong:\n%s", colored)
	}
}

func TestFrameEmptySLOs(t *testing.T) {
	r := renderer{width: 80, color: false}
	frame := r.frame("a", &healthWire{Status: "healthy", Healthy: true}, &historyWire{})
	if !strings.Contains(frame, "no SLOs configured") {
		t.Fatalf("empty-SLO frame: %q", frame)
	}
}
