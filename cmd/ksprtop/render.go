package main

// render.go is the pure half of ksprtop: everything that turns the two
// debug payloads into a terminal frame lives here, side-effect free, so
// the rendering is unit-testable without a server or a TTY.

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"
)

// sparkGlyphs is the eight-level block ramp sparklines are drawn with.
var sparkGlyphs = []rune("▁▂▃▄▅▆▇█")

// ansi escape fragments; disabled wholesale when color is off.
const (
	ansiReset  = "\x1b[0m"
	ansiGreen  = "\x1b[32m"
	ansiYellow = "\x1b[33m"
	ansiRed    = "\x1b[31m"
	ansiDim    = "\x1b[2m"
	ansiBold   = "\x1b[1m"
)

// healthWire mirrors the GET /v1/debug:health payload (the fields ksprtop
// renders; extra fields are ignored on decode).
type healthWire struct {
	Healthy       bool      `json:"healthy"`
	Score         float64   `json:"score"`
	Status        string    `json:"status"`
	SLOs          []sloWire `json:"slos"`
	Ready         bool      `json:"ready"`
	Datasets      int       `json:"datasets"`
	Generation    uint64    `json:"generation"`
	UptimeSeconds float64   `json:"uptime_seconds"`
	Build         buildWire `json:"build"`
}

// buildWire is the binary-identity block inside the health payload.
type buildWire struct {
	Version string `json:"version"`
	Go      string `json:"go"`
}

// sloWire is one objective's status row.
type sloWire struct {
	Name      string     `json:"name"`
	Breaching bool       `json:"breaching"`
	Score     float64    `json:"score"`
	Windows   []burnWire `json:"windows"`
}

// burnWire is one evaluated burn-rate window pair.
type burnWire struct {
	ShortMs   float64 `json:"short_ms"`
	LongMs    float64 `json:"long_ms"`
	Threshold float64 `json:"threshold"`
	BurnShort float64 `json:"burn_short"`
	BurnLong  float64 `json:"burn_long"`
	Breaching bool    `json:"breaching"`
}

// historyWire mirrors the GET /v1/debug:history payload.
type historyWire struct {
	IntervalMs  float64               `json:"interval_ms"`
	Samples     int                   `json:"samples"`
	TimesUnixMs []int64               `json:"times_unix_ms"`
	Series      map[string][]*float64 `json:"series"`
}

// sparkline draws vals as a fixed-width block-ramp strip. The series is
// resampled to width columns (last value per column); NaNs (missed ticks)
// render as spaces. A flat series draws at the lowest level so noise
// floors stay visually quiet.
func sparkline(vals []float64, width int) string {
	if width <= 0 || len(vals) == 0 {
		return strings.Repeat(" ", max(width, 0))
	}
	cols := resample(vals, width)
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range cols {
		if math.IsNaN(v) {
			continue
		}
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	var sb strings.Builder
	for _, v := range cols {
		switch {
		case math.IsNaN(v):
			sb.WriteByte(' ')
		case hi <= lo:
			sb.WriteRune(sparkGlyphs[0])
		default:
			idx := int((v - lo) / (hi - lo) * float64(len(sparkGlyphs)-1))
			if idx < 0 {
				idx = 0
			}
			if idx >= len(sparkGlyphs) {
				idx = len(sparkGlyphs) - 1
			}
			sb.WriteRune(sparkGlyphs[idx])
		}
	}
	return sb.String()
}

// resample squeezes or stretches vals to exactly width columns, keeping
// the last value of each source bucket (matching the server's step
// downsampling semantics).
func resample(vals []float64, width int) []float64 {
	out := make([]float64, width)
	for i := range out {
		out[i] = math.NaN()
	}
	if len(vals) <= width {
		// Right-align short series so "now" is always the last column.
		off := width - len(vals)
		copy(out[off:], vals)
		return out
	}
	for i, v := range vals {
		col := i * width / len(vals)
		if !math.IsNaN(v) {
			out[col] = v
		}
	}
	return out
}

// column converts one nullable series column into NaN-gapped floats.
func column(col []*float64) []float64 {
	out := make([]float64, len(col))
	for i, p := range col {
		if p == nil {
			out[i] = math.NaN()
		} else {
			out[i] = *p
		}
	}
	return out
}

// fmtValue renders a sample compactly: SI-ish suffixes above 10k, short
// decimals below.
func fmtValue(v float64) string {
	switch {
	case math.IsNaN(v):
		return "-"
	case math.Abs(v) >= 1e9:
		return fmt.Sprintf("%.2fG", v/1e9)
	case math.Abs(v) >= 1e6:
		return fmt.Sprintf("%.2fM", v/1e6)
	case math.Abs(v) >= 1e4:
		return fmt.Sprintf("%.1fk", v/1e3)
	case math.Abs(v) >= 100:
		return fmt.Sprintf("%.0f", v)
	case v == math.Trunc(v) && math.Abs(v) < 100:
		return fmt.Sprintf("%.0f", v)
	default:
		return fmt.Sprintf("%.3g", v)
	}
}

// fmtDuration renders an uptime without sub-second noise.
func fmtDuration(d time.Duration) string {
	d = d.Round(time.Second)
	if d >= time.Hour {
		return fmt.Sprintf("%dh%02dm", int(d.Hours()), int(d.Minutes())%60)
	}
	if d >= time.Minute {
		return fmt.Sprintf("%dm%02ds", int(d.Minutes()), int(d.Seconds())%60)
	}
	return d.String()
}

// fmtWindow renders a burn window length ("5m", "6h") from milliseconds.
func fmtWindow(ms float64) string {
	d := time.Duration(ms) * time.Millisecond
	if d >= time.Hour {
		return fmt.Sprintf("%gh", d.Hours())
	}
	return fmt.Sprintf("%gm", d.Minutes())
}

// renderer holds frame-level options; color off strips every ANSI code so
// -once output is pipe-clean.
type renderer struct {
	width int
	color bool
}

// paint wraps s in an ANSI code when color is on.
func (r renderer) paint(code, s string) string {
	if !r.color {
		return s
	}
	return code + s + ansiReset
}

// statusBadge renders the verdict word in its traffic-light color.
func (r renderer) statusBadge(h *healthWire) string {
	switch h.Status {
	case "healthy":
		return r.paint(ansiGreen+ansiBold, "HEALTHY")
	case "burning":
		return r.paint(ansiYellow+ansiBold, "BURNING")
	default:
		return r.paint(ansiRed+ansiBold, strings.ToUpper(h.Status))
	}
}

// frame renders one full dashboard frame from the two payloads.
func (r renderer) frame(addr string, h *healthWire, hist *historyWire) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s  %s  score %.3f  up %s  gen %d  datasets %d  %s %s\n",
		r.paint(ansiBold, "ksprtop"), addr,
		h.Score, fmtDuration(time.Duration(h.UptimeSeconds*float64(time.Second))),
		h.Generation, h.Datasets, h.Build.Version, r.statusBadge(h))
	if !h.Ready {
		sb.WriteString(r.paint(ansiYellow, "  NOT READY (WAL recovery in progress)") + "\n")
	}

	// SLO table: one row per objective, fast pair's burns up front.
	sb.WriteString(r.paint(ansiDim, strings.Repeat("─", r.width)) + "\n")
	for _, slo := range h.SLOs {
		badge := r.paint(ansiGreen, "ok ")
		if slo.Breaching {
			badge = r.paint(ansiRed, "BRN")
		}
		row := fmt.Sprintf("  %s %-22s score %.3f", badge, slo.Name, slo.Score)
		for _, w := range slo.Windows {
			row += fmt.Sprintf("  %s/%s %s/%s (thr %g)",
				fmtWindow(w.ShortMs), fmtWindow(w.LongMs),
				fmtValue(w.BurnShort), fmtValue(w.BurnLong), w.Threshold)
		}
		sb.WriteString(row + "\n")
	}
	if len(h.SLOs) == 0 {
		sb.WriteString(r.paint(ansiDim, "  (no SLOs configured)") + "\n")
	}

	// Sparkline block: stable alphabetical order so rows don't jump
	// between frames.
	sb.WriteString(r.paint(ansiDim, strings.Repeat("─", r.width)) + "\n")
	names := make([]string, 0, len(hist.Series))
	for name := range hist.Series {
		names = append(names, name)
	}
	sort.Strings(names)
	sparkWidth := r.width - 34
	if sparkWidth < 10 {
		sparkWidth = 10
	}
	for _, name := range names {
		vals := column(hist.Series[name])
		last := math.NaN()
		for i := len(vals) - 1; i >= 0; i-- {
			if !math.IsNaN(vals[i]) {
				last = vals[i]
				break
			}
		}
		fmt.Fprintf(&sb, "  %-20s %9s %s\n", name, fmtValue(last), sparkline(vals, sparkWidth))
	}
	if span := historySpan(hist); span > 0 {
		fmt.Fprintf(&sb, "%s\n", r.paint(ansiDim,
			fmt.Sprintf("  %d samples over %s, every %s", hist.Samples,
				fmtDuration(span), fmtDuration(time.Duration(hist.IntervalMs)*time.Millisecond))))
	}
	return sb.String()
}

// historySpan is the wall-clock distance covered by the returned ticks.
func historySpan(hist *historyWire) time.Duration {
	if len(hist.TimesUnixMs) < 2 {
		return 0
	}
	first := hist.TimesUnixMs[0]
	last := hist.TimesUnixMs[len(hist.TimesUnixMs)-1]
	return time.Duration(last-first) * time.Millisecond
}
