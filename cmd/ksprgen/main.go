// Command ksprgen generates the benchmark datasets of the paper's
// evaluation (§7.1) as CSV files: the synthetic IND / COR / ANTI
// distributions and the simulated HOTEL / HOUSE / NBA datasets.
//
// Examples:
//
//	ksprgen -dist IND -n 100000 -d 4 -seed 1 -o ind.csv
//	ksprgen -dist NBA -n 2196 -season 2 -o nba-s2.csv
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/dataset"
)

func main() {
	var (
		dist   = flag.String("dist", "IND", "distribution: IND, COR, ANTI, HOTEL, HOUSE, NBA")
		n      = flag.Int("n", 100000, "number of records")
		d      = flag.Int("d", 4, "dimensionality (IND/COR/ANTI only)")
		season = flag.Int("season", 1, "NBA season (1 or 2)")
		seed   = flag.Int64("seed", 1, "random seed")
		out    = flag.String("o", "", "output file (default stdout)")
	)
	flag.Parse()

	var (
		ds  *dataset.Dataset
		err error
	)
	switch strings.ToUpper(*dist) {
	case "IND", "COR", "ANTI":
		ds, err = dataset.Generate(dataset.Distribution(strings.ToUpper(*dist)), *n, *d, *seed)
	case "HOTEL":
		ds = dataset.Hotel(*n, *seed)
	case "HOUSE":
		ds = dataset.House(*n, *seed)
	case "NBA":
		ds = dataset.NBA(*n, *season, *seed)
	default:
		err = fmt.Errorf("unknown distribution %q", *dist)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "ksprgen:", err)
		os.Exit(1)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ksprgen:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if err := ds.WriteCSV(w); err != nil {
		fmt.Fprintln(os.Stderr, "ksprgen:", err)
		os.Exit(1)
	}
	if *out != "" {
		fmt.Fprintf(os.Stderr, "ksprgen: wrote %d records (%d attributes) to %s\n", ds.Len(), ds.Dim(), *out)
	}
}
