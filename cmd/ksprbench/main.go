// Command ksprbench regenerates the tables and figures of the paper's
// evaluation (§7 and appendices) on scaled-down workloads. Run a single
// experiment or the whole suite:
//
//	ksprbench -list
//	ksprbench -exp fig10b
//	ksprbench -exp all -scale 0.5 -queries 3 -seed 1
//
// Absolute numbers differ from the paper (different hardware, language,
// and scale); the shapes — who wins, by roughly what factor, where trends
// bend — are what the harness reproduces. See EXPERIMENTS.md.
//
// With -json the command instead runs a fixed per-algorithm micro-benchmark
// and writes BENCH_<name>.json (ns/op per algorithm, serial and — unless
// -parallel 1 — again on a multi-worker engine with the speedup ratio), so
// successive PRs can diff serving performance and the serial/parallel gap:
//
//	ksprbench -json -name pr12 -scale 0.5
//	ksprbench -json -name core -parallel 4
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	kspr "repro"
	"repro/internal/dataset"
	"repro/internal/experiments"
)

func main() {
	var (
		exp     = flag.String("exp", "all", "experiment id (see -list) or 'all'")
		scale   = flag.Float64("scale", 1.0, "cardinality scale factor (1.0 = 20K base)")
		queries = flag.Int("queries", 3, "focal records averaged per data point")
		seed    = flag.Int64("seed", 1, "random seed")
		skyband = flag.Bool("skyband-focals", false, "draw focal records from the K-skyband (non-trivial queries) instead of uniformly")
		list    = flag.Bool("list", false, "list experiments and exit")
		asJSON  = flag.Bool("json", false, "run the per-algorithm micro-benchmark and write BENCH_<name>.json")
		name    = flag.String("name", "main", "benchmark name for the -json summary file")
		dist    = flag.String("dist", "IND", "benchmark data distribution for -json: IND, COR, ANTI")
		dims    = flag.Int("d", 4, "benchmark dimensionality for -json")
		kFlag   = flag.Int("k", 10, "benchmark shortlist size for -json")
		par     = flag.Int("parallel", 0, "parallel sweep worker count for -json (0 = all cores, 1 = skip the sweep)")
	)
	flag.Parse()

	if *asJSON {
		if err := runBenchJSON(*name, *dist, *dims, *kFlag, *scale, *queries, *seed, *par); err != nil {
			fmt.Fprintln(os.Stderr, "ksprbench:", err)
			os.Exit(1)
		}
		return
	}

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-8s %s\n", e.ID, e.Desc)
		}
		return
	}

	cfg := experiments.Config{
		Scale:         *scale,
		Queries:       *queries,
		Seed:          *seed,
		SkybandFocals: *skyband,
		Out:           os.Stdout,
	}

	run := func(e experiments.Experiment) {
		start := time.Now()
		if err := e.Run(cfg); err != nil {
			fmt.Fprintf(os.Stderr, "ksprbench: %s: %v\n", e.ID, err)
			os.Exit(1)
		}
		fmt.Printf("[%s completed in %v]\n", e.ID, time.Since(start).Round(time.Millisecond))
	}

	if *exp == "all" {
		for _, e := range experiments.All() {
			run(e)
		}
		return
	}
	e, ok := experiments.Lookup(*exp)
	if !ok {
		fmt.Fprintf(os.Stderr, "ksprbench: unknown experiment %q (use -list)\n", *exp)
		os.Exit(2)
	}
	run(e)
}

// benchSummary is the schema of BENCH_<name>.json. Algorithms maps
// algorithm name to average ns/op over the benchmark's queries with the
// serial engine (parallelism 1); AlgorithmsParallel holds the same
// workload on Parallelism engine workers, and Speedup the serial/parallel
// ratio, so the file records a 1-core vs n-core baseline per algorithm.
type benchSummary struct {
	Name               string             `json:"name"`
	Timestamp          string             `json:"timestamp"`
	GoVersion          string             `json:"go_version"`
	GOOS               string             `json:"goos"`
	GOARCH             string             `json:"goarch"`
	CPUs               int                `json:"cpus"`
	Dist               string             `json:"dist"`
	N                  int                `json:"n"`
	D                  int                `json:"d"`
	K                  int                `json:"k"`
	Queries            int                `json:"queries"`
	Seed               int64              `json:"seed"`
	Algorithms         map[string]int64   `json:"ns_per_op"`
	Parallelism        int                `json:"parallelism,omitempty"`
	AlgorithmsParallel map[string]int64   `json:"ns_per_op_parallel,omitempty"`
	Speedup            map[string]float64 `json:"speedup,omitempty"`
}

// runBenchJSON times every algorithm on one synthetic workload — serially
// and, unless par == 1, again on a par-worker engine — and writes the
// ns/op summary to BENCH_<name>.json in the working directory.
func runBenchJSON(name, dist string, d, k int, scale float64, queries int, seed int64, par int) error {
	n := int(2000 * scale)
	if n < 100 {
		n = 100
	}
	if queries < 1 {
		queries = 1
	}
	ds, err := dataset.Generate(dataset.Distribution(dist), n, d, seed)
	if err != nil {
		return err
	}
	db, err := kspr.Open(ds.Float64s())
	if err != nil {
		return err
	}

	// Focal records come from the k-skyband so every query does real work
	// (a dominated focal short-circuits to an empty result immediately).
	band := db.KSkyband(k)
	if len(band) == 0 {
		return fmt.Errorf("empty %d-skyband", k)
	}
	focals := make([]int, queries)
	for i := range focals {
		focals[i] = band[i*len(band)/queries]
	}

	if par <= 0 {
		par = runtime.GOMAXPROCS(0)
	}
	sum := benchSummary{
		Name:      name,
		Timestamp: time.Now().UTC().Format(time.RFC3339),
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		CPUs:      runtime.GOMAXPROCS(0),
		Dist:      dist, N: n, D: d, K: k,
		Queries:    queries,
		Seed:       seed,
		Algorithms: map[string]int64{},
	}
	algos := []struct {
		label string
		algo  kspr.Algorithm
	}{
		{"CTA", kspr.CTA},
		{"P-CTA", kspr.PCTA},
		{"LP-CTA", kspr.LPCTA},
		{"k-skyband", kspr.KSkybandCTA},
	}
	sweep := func(label string, algo kspr.Algorithm, parallelism int) (int64, error) {
		start := time.Now()
		for _, f := range focals {
			_, err := db.KSPR(f, k, kspr.WithAlgorithm(algo), kspr.WithoutGeometry(),
				kspr.WithParallelism(parallelism))
			if err != nil {
				return 0, fmt.Errorf("%s focal %d: %w", label, f, err)
			}
		}
		return time.Since(start).Nanoseconds() / int64(len(focals)), nil
	}
	for _, a := range algos {
		ns, err := sweep(a.label, a.algo, 1)
		if err != nil {
			return err
		}
		sum.Algorithms[a.label] = ns
		fmt.Printf("%-10s %12d ns/op\n", a.label, ns)
	}
	if par > 1 {
		sum.Parallelism = par
		sum.AlgorithmsParallel = map[string]int64{}
		sum.Speedup = map[string]float64{}
		for _, a := range algos {
			ns, err := sweep(a.label, a.algo, par)
			if err != nil {
				return err
			}
			sum.AlgorithmsParallel[a.label] = ns
			if ns > 0 {
				sum.Speedup[a.label] = float64(sum.Algorithms[a.label]) / float64(ns)
			}
			fmt.Printf("%-10s %12d ns/op (parallelism=%d, %.2fx)\n",
				a.label, ns, par, sum.Speedup[a.label])
		}
	}
	// The approximate query is part of the serving surface; track it too.
	start := time.Now()
	for _, f := range focals {
		if _, err := db.KSPRApprox(f, k, 0.05); err != nil {
			return fmt.Errorf("approx focal %d: %w", f, err)
		}
	}
	sum.Algorithms["approx"] = time.Since(start).Nanoseconds() / int64(len(focals))
	fmt.Printf("%-10s %12d ns/op\n", "approx", sum.Algorithms["approx"])

	out := fmt.Sprintf("BENCH_%s.json", name)
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(sum); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%s n=%d d=%d k=%d, %d queries)\n", out, dist, n, d, k, queries)
	return nil
}
