// Command ksprbench regenerates the tables and figures of the paper's
// evaluation (§7 and appendices) on scaled-down workloads. Run a single
// experiment or the whole suite:
//
//	ksprbench -list
//	ksprbench -exp fig10b
//	ksprbench -exp all -scale 0.5 -queries 3 -seed 1
//
// Absolute numbers differ from the paper (different hardware, language,
// and scale); the shapes — who wins, by roughly what factor, where trends
// bend — are what the harness reproduces. See EXPERIMENTS.md.
//
// With -json the command instead runs a fixed per-algorithm micro-benchmark
// and writes BENCH_<name>.json (ns/op per algorithm, serial and — unless
// -parallel 1 — again on a multi-worker engine with the speedup ratio), so
// successive PRs can diff serving performance and the serial/parallel gap:
//
//	ksprbench -json -name pr12 -scale 0.5
//	ksprbench -json -name core -parallel 4
//
// -batch N additionally sweeps the shared-work batch engine: N focal
// options answered by one kspr.DB.KSPRBatch pass versus N independent
// serial runs, recording per-algorithm batch ns/op and the batch speedup
// (shared precomputation + arena reuse on one core; plus parallel
// scheduling on multicore):
//
//	ksprbench -json -name core -parallel 4 -batch 8
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"math/rand"
	"os"
	"runtime"
	"sort"
	"time"

	kspr "repro"
	"repro/internal/dataset"
	"repro/internal/experiments"
)

func main() {
	var (
		exp     = flag.String("exp", "all", "experiment id (see -list) or 'all'")
		scale   = flag.Float64("scale", 1.0, "cardinality scale factor (1.0 = 20K base)")
		queries = flag.Int("queries", 3, "focal records averaged per data point")
		seed    = flag.Int64("seed", 1, "random seed")
		skyband = flag.Bool("skyband-focals", false, "draw focal records from the K-skyband (non-trivial queries) instead of uniformly")
		list    = flag.Bool("list", false, "list experiments and exit")
		asJSON  = flag.Bool("json", false, "run the per-algorithm micro-benchmark and write BENCH_<name>.json")
		name    = flag.String("name", "main", "benchmark name for the -json summary file")
		dist    = flag.String("dist", "IND", "benchmark data distribution for -json: IND, COR, ANTI")
		dims    = flag.Int("d", 4, "benchmark dimensionality for -json")
		kFlag   = flag.Int("k", 10, "benchmark shortlist size for -json")
		par     = flag.Int("parallel", 0, "parallel sweep worker count for -json (0 = all cores, 1 = skip the sweep)")
		batch   = flag.Int("batch", 0, "batch sweep focal count for -json (0 = skip, otherwise >= 2)")
		mutN    = flag.Int("mutate", 0, "mutation sweep size for -json: WAL apply throughput + incremental-vs-cold maintenance over this many mutations (0 = skip)")
		whatN   = flag.Int("whatif", 0, "what-if sweep for -json: an impact-price frontier of this many grid points plus a repricing search, recording whatif_probe_ns and whatif_keep_rate (0 = skip, otherwise >= 2)")
		largeN  = flag.Float64("n", 0, "large-N sweep for -json: time the columnar kernels at n = 1e3, 1e4, ... up to this cardinality (accepts 1e6 notation; 0 = skip, otherwise >= 1000)")
	)
	flag.Parse()

	if *par < 0 {
		fmt.Fprintf(os.Stderr, "ksprbench: -parallel must be >= 0 (0 = all cores, 1 = skip the sweep), got %d\n", *par)
		flag.Usage()
		os.Exit(2)
	}
	if *batch < 0 || *batch == 1 {
		fmt.Fprintf(os.Stderr, "ksprbench: -batch must be 0 (skip) or >= 2 focals, got %d\n", *batch)
		flag.Usage()
		os.Exit(2)
	}
	if *queries < 1 {
		fmt.Fprintf(os.Stderr, "ksprbench: -queries must be >= 1, got %d\n", *queries)
		flag.Usage()
		os.Exit(2)
	}

	if *mutN < 0 {
		fmt.Fprintf(os.Stderr, "ksprbench: -mutate must be >= 0, got %d\n", *mutN)
		flag.Usage()
		os.Exit(2)
	}
	if *whatN < 0 || *whatN == 1 {
		fmt.Fprintf(os.Stderr, "ksprbench: -whatif must be 0 (skip) or >= 2 grid points, got %d\n", *whatN)
		flag.Usage()
		os.Exit(2)
	}
	topN := int(*largeN)
	if *largeN != 0 && (topN < 1000 || float64(topN) != *largeN) {
		fmt.Fprintf(os.Stderr, "ksprbench: -n must be 0 (skip) or an integer >= 1000, got %g\n", *largeN)
		flag.Usage()
		os.Exit(2)
	}

	if *asJSON {
		if err := runBenchJSON(*name, *dist, *dims, *kFlag, *scale, *queries, *seed, *par, *batch, *mutN, *whatN, topN); err != nil {
			fmt.Fprintln(os.Stderr, "ksprbench:", err)
			os.Exit(1)
		}
		return
	}

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-8s %s\n", e.ID, e.Desc)
		}
		return
	}

	cfg := experiments.Config{
		Scale:         *scale,
		Queries:       *queries,
		Seed:          *seed,
		SkybandFocals: *skyband,
		Out:           os.Stdout,
	}

	run := func(e experiments.Experiment) {
		start := time.Now()
		if err := e.Run(cfg); err != nil {
			fmt.Fprintf(os.Stderr, "ksprbench: %s: %v\n", e.ID, err)
			os.Exit(1)
		}
		fmt.Printf("[%s completed in %v]\n", e.ID, time.Since(start).Round(time.Millisecond))
	}

	if *exp == "all" {
		for _, e := range experiments.All() {
			run(e)
		}
		return
	}
	e, ok := experiments.Lookup(*exp)
	if !ok {
		fmt.Fprintf(os.Stderr, "ksprbench: unknown experiment %q (use -list)\n", *exp)
		os.Exit(2)
	}
	run(e)
}

// benchSummary is the schema of BENCH_<name>.json. Algorithms maps
// algorithm name to average ns/op over the benchmark's queries with the
// serial engine (parallelism 1); AlgorithmsParallel holds the same
// workload on Parallelism engine workers, and Speedup the serial/parallel
// ratio, so the file records a 1-core vs n-core baseline per algorithm.
type benchSummary struct {
	Name       string           `json:"name"`
	Timestamp  string           `json:"timestamp"`
	GoVersion  string           `json:"go_version"`
	GOOS       string           `json:"goos"`
	GOARCH     string           `json:"goarch"`
	CPUs       int              `json:"cpus"`
	Dist       string           `json:"dist"`
	N          int              `json:"n"`
	D          int              `json:"d"`
	K          int              `json:"k"`
	Queries    int              `json:"queries"`
	Seed       int64            `json:"seed"`
	Algorithms map[string]int64 `json:"ns_per_op"`
	// AlgorithmsP95/P99 are nearest-rank tail latencies over the serial
	// sweep's per-query wall times, so benchcmp can gate tail latency, not
	// just the mean. They are only emitted at -queries >= minTailQueries:
	// below that the nearest-rank estimate collapses to the max and the
	// gate compares noise to noise.
	AlgorithmsP95      map[string]int64   `json:"p95_ns,omitempty"`
	AlgorithmsP99      map[string]int64   `json:"p99_ns,omitempty"`
	Parallelism        int                `json:"parallelism,omitempty"`
	AlgorithmsParallel map[string]int64   `json:"ns_per_op_parallel,omitempty"`
	Speedup            map[string]float64 `json:"speedup,omitempty"`
	// Batch sweep (-batch N): ns/op for N focals answered as N independent
	// serial runs versus one shared-work KSPRBatch pass on
	// BatchParallelism workers, and the serial/batch ratio. On a single
	// core the ratio isolates the shared-precomputation gain; on multicore
	// it additionally reflects batch scheduling.
	BatchFocals         int                `json:"batch_focals,omitempty"`
	BatchParallelism    int                `json:"batch_parallelism,omitempty"`
	AlgorithmsBatchBase map[string]int64   `json:"ns_per_op_batch_serial,omitempty"`
	AlgorithmsBatch     map[string]int64   `json:"ns_per_op_batch,omitempty"`
	BatchSpeedup        map[string]float64 `json:"batch_speedup,omitempty"`
	// Mutation sweep (-mutate N): live-dataset numbers. MutationOpsPerSec
	// is the WAL-backed store's apply throughput (single mutations, no
	// fsync); the incremental pair times keeping one focal's kSPR result
	// current across N mutations — NsPerGenIncremental with the
	// maintenance engine (classify, keep or recompute), NsPerGenCold with
	// a cold recompute every generation — and IncrementalSpeedup their
	// ratio. IncrementalKept / IncrementalRecomputed report the decision
	// mix behind the incremental number.
	Mutations             int     `json:"mutations,omitempty"`
	MutationOpsPerSec     float64 `json:"mutation_ops_per_sec,omitempty"`
	NsPerGenIncremental   int64   `json:"ns_per_gen_incremental,omitempty"`
	NsPerGenCold          int64   `json:"ns_per_gen_cold,omitempty"`
	IncrementalSpeedup    float64 `json:"incremental_speedup,omitempty"`
	IncrementalKept       uint64  `json:"incremental_kept,omitempty"`
	IncrementalRecomputed uint64  `json:"incremental_recomputed,omitempty"`
	// What-if sweep (-whatif N): an N-point impact-price frontier for a
	// skyband focal (grid spanning dominated through competitive prices)
	// plus one repricing bisection. WhatIfProbeNs is the frontier's average
	// wall-clock per grid probe, WhatIfKeepRate the fraction of probes the
	// incremental classification answered without an engine run (the gate
	// asserts it stays > 0), and WhatIfPriceNs the full bisection search.
	WhatIfPoints   int     `json:"whatif_points,omitempty"`
	WhatIfProbeNs  int64   `json:"whatif_probe_ns,omitempty"`
	WhatIfKeepRate float64 `json:"whatif_keep_rate,omitempty"`
	WhatIfKept     int     `json:"whatif_kept,omitempty"`
	WhatIfPriceNs  int64   `json:"whatif_price_ns,omitempty"`
	// Large-N sweep (-n N): dataset-cardinality scaling of the columnar
	// kernels, measured at n = 1e3, 1e4, ... up to N on a fixed
	// largen_d / largen_k workload (3 dimensions, k=5 — chosen so the
	// top point finishes in CI). Each point times index construction
	// (kspr.Open: flat packing + STR bulk load), one k-skyband
	// extraction, one TopK traversal, one flat Rank scan, and one LP-CTA
	// kSPR query without geometry on a skyband focal. When the sweep
	// reaches exactly n = 1e6 that point is mirrored into ns_per_op_n1e6,
	// the map benchcmp's large-n gate diffs across PRs.
	LargeNTop   int              `json:"largen_top,omitempty"`
	LargeND     int              `json:"largen_d,omitempty"`
	LargeNK     int              `json:"largen_k,omitempty"`
	LargeNSweep []largeNPoint    `json:"largen_sweep,omitempty"`
	LargeN1e6   map[string]int64 `json:"ns_per_op_n1e6,omitempty"`
}

// largeNPoint is one cardinality of the large-N sweep.
type largeNPoint struct {
	N         int   `json:"n"`
	BuildNs   int64 `json:"build_ns"`
	SkybandNs int64 `json:"skyband_ns"`
	TopKNs    int64 `json:"topk_ns"`
	RankNs    int64 `json:"rank_ns"`
	KSPRNs    int64 `json:"kspr_ns"`
}

// runBenchJSON times every algorithm on one synthetic workload — serially,
// unless par == 1 again on a par-worker engine, and with nb > 0 as an
// nb-focal batch versus nb serial runs — and writes the ns/op summary to
// BENCH_<name>.json in the working directory.
func runBenchJSON(name, dist string, d, k int, scale float64, queries int, seed int64, par, nb, nm, nw, topN int) error {
	n := int(2000 * scale)
	if n < 100 {
		n = 100
	}
	if queries < 1 {
		queries = 1
	}
	ds, err := dataset.Generate(dataset.Distribution(dist), n, d, seed)
	if err != nil {
		return err
	}
	db, err := kspr.Open(ds.Float64s())
	if err != nil {
		return err
	}

	// Focal records come from the k-skyband so every query does real work
	// (a dominated focal short-circuits to an empty result immediately).
	band := db.KSkyband(k)
	if len(band) == 0 {
		return fmt.Errorf("empty %d-skyband", k)
	}
	focals := make([]int, queries)
	for i := range focals {
		focals[i] = band[i*len(band)/queries]
	}

	if par <= 0 {
		par = runtime.GOMAXPROCS(0)
	}
	sum := benchSummary{
		Name:      name,
		Timestamp: time.Now().UTC().Format(time.RFC3339),
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		CPUs:      runtime.GOMAXPROCS(0),
		Dist:      dist, N: n, D: d, K: k,
		Queries:    queries,
		Seed:       seed,
		Algorithms: map[string]int64{},
	}
	algos := []struct {
		label string
		algo  kspr.Algorithm
	}{
		{"CTA", kspr.CTA},
		{"P-CTA", kspr.PCTA},
		{"LP-CTA", kspr.LPCTA},
		{"k-skyband", kspr.KSkybandCTA},
	}
	// sweep times each focal individually so the serial pass can report
	// tail latency, not just the mean.
	sweep := func(label string, algo kspr.Algorithm, parallelism int) (int64, []int64, error) {
		lats := make([]int64, 0, len(focals))
		var total int64
		for _, f := range focals {
			start := time.Now()
			_, err := db.KSPR(f, k, kspr.WithAlgorithm(algo), kspr.WithoutGeometry(),
				kspr.WithParallelism(parallelism))
			if err != nil {
				return 0, nil, fmt.Errorf("%s focal %d: %w", label, f, err)
			}
			ns := time.Since(start).Nanoseconds()
			lats = append(lats, ns)
			total += ns
		}
		return total / int64(len(focals)), lats, nil
	}
	// Tails are only recorded with enough samples to mean something: the
	// nearest-rank p95/p99 of a tiny sweep collapse to the max, and a
	// committed baseline full of max-values makes the tail gate pure noise.
	recordTails := queries >= minTailQueries
	if recordTails {
		sum.AlgorithmsP95 = map[string]int64{}
		sum.AlgorithmsP99 = map[string]int64{}
	} else {
		fmt.Printf("tails: skipped (need -queries >= %d for meaningful p95/p99, have %d)\n",
			minTailQueries, queries)
	}
	for _, a := range algos {
		ns, lats, err := sweep(a.label, a.algo, 1)
		if err != nil {
			return err
		}
		sum.Algorithms[a.label] = ns
		if recordTails {
			sum.AlgorithmsP95[a.label] = tailNs(lats, 0.95)
			sum.AlgorithmsP99[a.label] = tailNs(lats, 0.99)
			fmt.Printf("%-10s %12d ns/op (p95 %d, p99 %d)\n",
				a.label, ns, sum.AlgorithmsP95[a.label], sum.AlgorithmsP99[a.label])
		} else {
			fmt.Printf("%-10s %12d ns/op\n", a.label, ns)
		}
	}
	if par > 1 {
		sum.Parallelism = par
		sum.AlgorithmsParallel = map[string]int64{}
		sum.Speedup = map[string]float64{}
		for _, a := range algos {
			ns, _, err := sweep(a.label, a.algo, par)
			if err != nil {
				return err
			}
			sum.AlgorithmsParallel[a.label] = ns
			if ns > 0 {
				sum.Speedup[a.label] = float64(sum.Algorithms[a.label]) / float64(ns)
			}
			fmt.Printf("%-10s %12d ns/op (parallelism=%d, %.2fx)\n",
				a.label, ns, par, sum.Speedup[a.label])
		}
	}
	if nb > 1 {
		// Batch sweep: nb focals drawn from the skyband, answered as nb
		// independent serial runs and as one shared-work batch.
		bf := make([]int, nb)
		bq := make([]kspr.BatchQuery, nb)
		for i := range bf {
			bf[i] = band[i*len(band)/nb]
			bq[i] = kspr.BatchQuery{FocalID: bf[i]}
		}
		bpar := par
		sum.BatchFocals = nb
		sum.BatchParallelism = bpar
		sum.AlgorithmsBatchBase = map[string]int64{}
		sum.AlgorithmsBatch = map[string]int64{}
		sum.BatchSpeedup = map[string]float64{}
		for _, a := range algos {
			start := time.Now()
			for _, f := range bf {
				if _, err := db.KSPR(f, k, kspr.WithAlgorithm(a.algo), kspr.WithoutGeometry(),
					kspr.WithParallelism(1)); err != nil {
					return fmt.Errorf("%s batch-serial focal %d: %w", a.label, f, err)
				}
			}
			serialNs := time.Since(start).Nanoseconds() / int64(nb)

			start = time.Now()
			outs, err := db.KSPRBatch(bq, k, kspr.WithBatchOptions(
				kspr.WithAlgorithm(a.algo), kspr.WithoutGeometry(), kspr.WithParallelism(bpar)))
			if err != nil {
				return fmt.Errorf("%s batch: %w", a.label, err)
			}
			batchNs := time.Since(start).Nanoseconds() / int64(nb)
			for i, o := range outs {
				if o.Err != nil {
					return fmt.Errorf("%s batch focal %d: %w", a.label, bf[i], o.Err)
				}
			}
			sum.AlgorithmsBatchBase[a.label] = serialNs
			sum.AlgorithmsBatch[a.label] = batchNs
			if batchNs > 0 {
				sum.BatchSpeedup[a.label] = float64(serialNs) / float64(batchNs)
			}
			fmt.Printf("%-10s %12d ns/op (batch of %d, %.2fx vs serial)\n",
				a.label, batchNs, nb, sum.BatchSpeedup[a.label])
		}
	}

	if nm > 0 {
		if err := runMutationSweep(&sum, ds, dist, d, k, seed, nm); err != nil {
			return err
		}
	}

	if nw > 1 {
		if err := runWhatIfSweep(&sum, db, band, k, seed, nw); err != nil {
			return err
		}
	}

	if topN > 0 {
		if err := runLargeNSweep(&sum, dist, seed, topN); err != nil {
			return err
		}
	}

	// The approximate query is part of the serving surface; track it too.
	var approxTotal int64
	approxLats := make([]int64, 0, len(focals))
	for _, f := range focals {
		start := time.Now()
		if _, err := db.KSPRApprox(f, k, 0.05); err != nil {
			return fmt.Errorf("approx focal %d: %w", f, err)
		}
		ns := time.Since(start).Nanoseconds()
		approxLats = append(approxLats, ns)
		approxTotal += ns
	}
	sum.Algorithms["approx"] = approxTotal / int64(len(focals))
	if recordTails {
		sum.AlgorithmsP95["approx"] = tailNs(approxLats, 0.95)
		sum.AlgorithmsP99["approx"] = tailNs(approxLats, 0.99)
		fmt.Printf("%-10s %12d ns/op (p95 %d, p99 %d)\n",
			"approx", sum.Algorithms["approx"], sum.AlgorithmsP95["approx"], sum.AlgorithmsP99["approx"])
	} else {
		fmt.Printf("%-10s %12d ns/op\n", "approx", sum.Algorithms["approx"])
	}

	out := fmt.Sprintf("BENCH_%s.json", name)
	return writeBenchFile(out, &sum, dist, n, d, k, queries)
}

// minTailQueries is the smallest -queries at which p95/p99 are recorded:
// the nearest-rank p95 needs at least 20 samples before it stops being
// the sample max.
const minTailQueries = 20

// tailNs is the nearest-rank p-quantile of the latency samples
// (rank ceil(p*n), clamped), matching the serving histogram's estimator.
func tailNs(lats []int64, p float64) int64 {
	if len(lats) == 0 {
		return 0
	}
	sorted := append([]int64(nil), lats...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	rank := int(math.Ceil(p * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}

// writeBenchFile renders the summary to BENCH_<name>.json.
func writeBenchFile(out string, sum *benchSummary, dist string, n, d, k, queries int) error {
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(sum); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%s n=%d d=%d k=%d, %d queries)\n", out, dist, n, d, k, queries)
	return nil
}

// largeND / largeNK fix the large-N sweep's workload shape: 3 attributes
// and a shortlist of 5 keep even the 1e6-record kSPR point inside a CI
// budget while the linear-in-n kernels (packing, STR sort, skyband scan,
// rank scan) dominate — which is what the sweep is meant to watch.
const (
	largeND = 3
	largeNK = 5
)

// bestOf runs f iters times and returns the fastest wall-clock time in
// nanoseconds.
func bestOf(iters int, f func()) int64 {
	best := int64(math.MaxInt64)
	for i := 0; i < iters; i++ {
		start := time.Now()
		f()
		if ns := time.Since(start).Nanoseconds(); ns < best {
			best = ns
		}
	}
	return best
}

// runLargeNSweep times the columnar kernels across dataset cardinalities
// 1e3, 1e4, ... up to topN (topN itself is always the last point).
func runLargeNSweep(sum *benchSummary, dist string, seed int64, topN int) error {
	var points []int
	for n := 1000; n < topN; n *= 10 {
		points = append(points, n)
	}
	points = append(points, topN)

	sum.LargeNTop, sum.LargeND, sum.LargeNK = topN, largeND, largeNK
	for _, n := range points {
		ds, err := dataset.Generate(dataset.Distribution(dist), n, largeND, seed)
		if err != nil {
			return fmt.Errorf("large-n %d: %w", n, err)
		}
		recs := ds.Float64s()

		// Every kernel is timed over repeated runs and recorded as the
		// minimum — single-shot timings at this scale jitter past any
		// sane gate tolerance, and the minimum is the noise-robust
		// estimator for a deterministic kernel. Build gets two runs (it
		// is seconds of work); the sub-second kernels get three.
		var db *kspr.DB
		var openErr error
		p := largeNPoint{N: n}
		p.BuildNs = bestOf(2, func() {
			d, err := kspr.Open(recs)
			if err != nil {
				openErr = err
				return
			}
			db = d
		})
		if openErr != nil {
			return fmt.Errorf("large-n %d: %w", n, openErr)
		}

		var band []int
		p.SkybandNs = bestOf(3, func() { band = db.KSkyband(largeNK) })
		if len(band) == 0 {
			return fmt.Errorf("large-n %d: empty %d-skyband", n, largeNK)
		}

		w := make([]float64, largeND)
		for j := range w {
			w[j] = 1.0 / float64(largeND)
		}
		p.TopKNs = bestOf(3, func() { db.TopK(w, largeNK) })

		focal := band[len(band)/2]
		p.RankNs = bestOf(3, func() { db.Rank(focal, w) })

		var ksprErr error
		p.KSPRNs = bestOf(3, func() {
			if _, err := db.KSPR(focal, largeNK, kspr.WithAlgorithm(kspr.LPCTA),
				kspr.WithoutGeometry(), kspr.WithParallelism(1)); err != nil {
				ksprErr = err
			}
		})
		if ksprErr != nil {
			return fmt.Errorf("large-n %d: kSPR: %w", n, ksprErr)
		}

		sum.LargeNSweep = append(sum.LargeNSweep, p)
		fmt.Printf("%-10s n=%-8d build %12d skyband %12d topk %10d rank %10d kspr %12d ns\n",
			"large-n", n, p.BuildNs, p.SkybandNs, p.TopKNs, p.RankNs, p.KSPRNs)
		if n == 1_000_000 {
			sum.LargeN1e6 = map[string]int64{
				"build":   p.BuildNs,
				"skyband": p.SkybandNs,
				"topk":    p.TopKNs,
				"rank":    p.RankNs,
				"kspr":    p.KSPRNs,
			}
		}
	}
	return nil
}

// runWhatIfSweep measures the what-if layer: one nw-point impact-price
// frontier plus one full repricing bisection against the maintained
// scratch dataset. The focal is a DOMINATED record (outside the
// k-skyband) — the realistic seller asking what reprice would make the
// option competitive — so the grid's low end is provably empty and
// answered by the incremental classification without an engine run: the
// recorded keep rate reflects the fast path actually firing, and the
// bench gate fails if it ever drops to zero.
func runWhatIfSweep(sum *benchSummary, db *kspr.DB, band []int, k int, seed int64, nw int) error {
	inBand := make(map[int]bool, len(band))
	for _, id := range band {
		inBand[id] = true
	}
	focal := -1
	for id := 0; id < db.Len(); id++ {
		if !inBand[id] {
			focal = id
			break
		}
	}
	if focal < 0 {
		focal = band[len(band)/2] // every record is in the skyband: degenerate but valid
	}
	curve, err := db.Frontier(focal, k, kspr.FrontierSpec{
		Attr: 0, Min: 0.02, Max: 1.3, Steps: nw, Samples: 5000, Seed: seed,
	}, kspr.WithoutGeometry())
	if err != nil {
		return fmt.Errorf("what-if frontier: %w", err)
	}
	sum.WhatIfPoints = nw
	sum.WhatIfProbeNs = curve.Stats.ProbeNs
	sum.WhatIfKeepRate = curve.Stats.KeepRate
	sum.WhatIfKept = curve.Stats.Kept
	fmt.Printf("%-10s %12d ns/probe (frontier of %d, keep rate %.0f%%)\n",
		"whatif", curve.Stats.ProbeNs, nw, 100*curve.Stats.KeepRate)

	start := time.Now()
	rp, err := db.PriceToTarget(focal, k, kspr.RepriceSpec{
		Attr: 0, Target: 0.3, Eps: 1e-3, Samples: 5000, Seed: seed,
	}, kspr.WithoutGeometry())
	if err != nil {
		return fmt.Errorf("what-if reprice: %w", err)
	}
	sum.WhatIfPriceNs = time.Since(start).Nanoseconds()
	fmt.Printf("%-10s %12d ns/search (%d probes, %d kept, delta %+.4f -> impact %.4f)\n",
		"reprice", sum.WhatIfPriceNs, rp.Stats.Probes, rp.Stats.Kept, rp.Delta, rp.Impact)
	return nil
}

// runMutationSweep measures the live-dataset subsystem: the WAL-backed
// store's apply throughput, and the cost of keeping one focal's kSPR
// result current across nm mutations — incrementally (classify, keep or
// recompute) versus a cold recompute per generation. Both maintenance
// runs see the identical mutation stream (two live DBs evolved in
// lockstep), so the ratio isolates the maintenance strategy.
func runMutationSweep(sum *benchSummary, ds *dataset.Dataset, dist string, d, k int, seed int64, nm int) error {
	// (a) Store apply throughput: bootstrap once, then nm single-mutation
	// batches (no fsync; the default ksprd configuration).
	dir, err := os.MkdirTemp("", "ksprbench-store-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	sdb, err := kspr.OpenStore(dir)
	if err != nil {
		return err
	}
	boot := make([]kspr.Mutation, ds.Len())
	for i, rec := range ds.Float64s() {
		boot[i] = kspr.Insert(rec...)
	}
	if _, err := sdb.Apply(boot...); err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(seed + 99))
	randVec := func(lo, hi float64) []float64 {
		v := make([]float64, d)
		for j := range v {
			v[j] = lo + (hi-lo)*rng.Float64()
		}
		return v
	}
	start := time.Now()
	for i := 0; i < nm; i++ {
		var err error
		switch i % 3 {
		case 0:
			_, err = sdb.Apply(kspr.Insert(randVec(0, 1)...))
		case 1:
			id, _ := sdb.StableID(rng.Intn(sdb.Len()))
			_, err = sdb.Apply(kspr.Update(id, randVec(0, 1)...))
		default:
			id, _ := sdb.StableID(rng.Intn(sdb.Len()))
			_, err = sdb.Apply(kspr.Delete(id))
		}
		if err != nil {
			return fmt.Errorf("store sweep mutation %d: %w", i, err)
		}
	}
	elapsed := time.Since(start)
	sum.Mutations = nm
	sum.MutationOpsPerSec = float64(nm) / elapsed.Seconds()
	if err := sdb.Close(); err != nil {
		return err
	}
	fmt.Printf("%-10s %12.0f mutations/sec (WAL store, %s d=%d)\n", "store", sum.MutationOpsPerSec, dist, d)

	// (b) Incremental vs cold maintenance over an identical stream.
	mkdb := func() (*kspr.DB, error) { return kspr.Open(ds.Float64s()) }
	inc, err := mkdb()
	if err != nil {
		return err
	}
	cold, err := mkdb()
	if err != nil {
		return err
	}
	band := inc.KSkyband(k)
	focal := band[len(band)/2]
	focalStable, _ := inc.StableID(focal)
	var incNs int64
	start = time.Now()
	lq, err := inc.MaintainKSPR(focal, k, kspr.WithoutGeometry())
	if err != nil {
		return err
	}
	defer lq.Close()
	incNs += time.Since(start).Nanoseconds() // the initial cold run counts for both sides
	var coldNs int64
	start = time.Now()
	if _, err := cold.KSPR(focal, k, kspr.WithoutGeometry()); err != nil {
		return err
	}
	coldNs += time.Since(start).Nanoseconds()

	rng = rand.New(rand.NewSource(seed + 7))
	for i := 0; i < nm; i++ {
		var muts []kspr.Mutation
		switch i % 4 {
		case 0, 1: // irrelevant churn deep in the dominated interior
			muts = []kspr.Mutation{kspr.Insert(randVec(0.01, 0.2)...)}
		case 2: // relevant: skyline-ish insert
			muts = []kspr.Mutation{kspr.Insert(randVec(0.85, 1)...)}
		default: // delete a random non-focal option (re-draw until distinct)
			id := focalStable
			for id == focalStable {
				id, _ = inc.StableID(rng.Intn(inc.Len()))
			}
			muts = []kspr.Mutation{kspr.Delete(id)}
		}
		start = time.Now()
		if _, err := inc.Apply(muts...); err != nil { // maintenance runs inside Apply
			return fmt.Errorf("incremental sweep %d: %w", i, err)
		}
		if _, _, err := lq.Result(); err != nil {
			return fmt.Errorf("incremental sweep %d: %w", i, err)
		}
		incNs += time.Since(start).Nanoseconds()

		start = time.Now()
		if _, err := cold.Apply(muts...); err != nil {
			return fmt.Errorf("cold sweep %d: %w", i, err)
		}
		dense, ok := cold.DenseIndex(focalStable)
		if !ok {
			return fmt.Errorf("cold sweep %d: focal vanished", i)
		}
		if _, err := cold.KSPR(dense, k, kspr.WithoutGeometry()); err != nil {
			return fmt.Errorf("cold sweep %d: %w", i, err)
		}
		coldNs += time.Since(start).Nanoseconds()
	}
	st := lq.Stats()
	sum.NsPerGenIncremental = incNs / int64(nm)
	sum.NsPerGenCold = coldNs / int64(nm)
	sum.IncrementalKept, sum.IncrementalRecomputed = st.Kept, st.Recomputed
	if sum.NsPerGenIncremental > 0 {
		sum.IncrementalSpeedup = float64(sum.NsPerGenCold) / float64(sum.NsPerGenIncremental)
	}
	fmt.Printf("%-10s %12d ns/gen incremental vs %d ns/gen cold (%.2fx, %d kept / %d recomputed)\n",
		"maintain", sum.NsPerGenIncremental, sum.NsPerGenCold,
		sum.IncrementalSpeedup, st.Kept, st.Recomputed)
	return nil
}
