// Command ksprbench regenerates the tables and figures of the paper's
// evaluation (§7 and appendices) on scaled-down workloads. Run a single
// experiment or the whole suite:
//
//	ksprbench -list
//	ksprbench -exp fig10b
//	ksprbench -exp all -scale 0.5 -queries 3 -seed 1
//
// Absolute numbers differ from the paper (different hardware, language,
// and scale); the shapes — who wins, by roughly what factor, where trends
// bend — are what the harness reproduces. See EXPERIMENTS.md.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/experiments"
)

func main() {
	var (
		exp     = flag.String("exp", "all", "experiment id (see -list) or 'all'")
		scale   = flag.Float64("scale", 1.0, "cardinality scale factor (1.0 = 20K base)")
		queries = flag.Int("queries", 3, "focal records averaged per data point")
		seed    = flag.Int64("seed", 1, "random seed")
		skyband = flag.Bool("skyband-focals", false, "draw focal records from the K-skyband (non-trivial queries) instead of uniformly")
		list    = flag.Bool("list", false, "list experiments and exit")
	)
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-8s %s\n", e.ID, e.Desc)
		}
		return
	}

	cfg := experiments.Config{
		Scale:         *scale,
		Queries:       *queries,
		Seed:          *seed,
		SkybandFocals: *skyband,
		Out:           os.Stdout,
	}

	run := func(e experiments.Experiment) {
		start := time.Now()
		if err := e.Run(cfg); err != nil {
			fmt.Fprintf(os.Stderr, "ksprbench: %s: %v\n", e.ID, err)
			os.Exit(1)
		}
		fmt.Printf("[%s completed in %v]\n", e.ID, time.Since(start).Round(time.Millisecond))
	}

	if *exp == "all" {
		for _, e := range experiments.All() {
			run(e)
		}
		return
	}
	e, ok := experiments.Lookup(*exp)
	if !ok {
		fmt.Fprintf(os.Stderr, "ksprbench: unknown experiment %q (use -list)\n", *exp)
		os.Exit(2)
	}
	run(e)
}
