// Command kspr answers k-Shortlist Preference Region queries from the
// terminal: load a CSV dataset (see ksprgen), pick a focal record (or a
// panel of them) and k, and print the regions as text or JSON.
//
// Example:
//
//	ksprgen -dist IND -n 5000 -d 3 -o d.csv
//	kspr -data d.csv -focal 17 -k 10 -volumes
//	kspr -data d.csv -focals 17,42,311 -k 10
//
// With -focals the panel runs as one shared-work batch (see
// kspr.DB.KSPRBatch): dominance precomputation, candidate index and LP
// arenas are built once and amortized across every focal option.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"strings"
	"time"

	kspr "repro"
	"repro/internal/dataset"
)

func main() {
	var (
		dataPath = flag.String("data", "", "CSV dataset (required; header row, optional leading label column)")
		focal    = flag.Int("focal", 0, "focal record index")
		focals   = flag.String("focals", "", "comma-separated focal record indices: run the panel as one shared-work batch")
		k        = flag.Int("k", 10, "shortlist size")
		algo     = flag.String("algo", "lp-cta", "algorithm: cta, p-cta, lp-cta, k-skyband")
		space    = flag.String("space", "transformed", "preference space: transformed, original")
		volumes  = flag.Bool("volumes", false, "measure region volumes")
		asJSON   = flag.Bool("json", false, "emit JSON")
		svgPath  = flag.String("svg", "", "write an SVG plot of the regions (d=3 data only)")
		seed     = flag.Int64("seed", 1, "seed for volume estimation")
		par      = flag.Int("parallelism", 0, "query engine goroutines (0 = all cores, 1 = serial)")
		mutate   = flag.Int("mutate", 0, "live-dataset demo: apply this many random mutations while incrementally maintaining the -focal query")
		focalVec = flag.String("focal-vec", "", "comma-separated attribute vector: query a hypothetical record instead of -focal")
		whatif   = flag.Bool("whatif", false, "competitive what-if panel for -focal: competitor attribution, repricing search, impact-price frontier")
		explain  = flag.Bool("explain", false, "print the engine phase breakdown (wall time per phase) after the query")
		attr     = flag.Int("attr", 0, "attribute index the what-if panel reprices")
		target   = flag.Float64("target", 0.5, "target impact probability for the what-if repricing search")
		steps    = flag.Int("steps", 8, "grid size of the what-if frontier sweep")
		samples  = flag.Int("samples", 20000, "Monte-Carlo samples behind impact estimates")
	)
	flag.Parse()
	usageErr := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "kspr: "+format+"\n", args...)
		flag.Usage()
		os.Exit(2)
	}
	if *dataPath == "" {
		usageErr("-data is required")
	}
	if *par < 0 {
		usageErr("-parallelism must be >= 0 (0 = all cores), got %d", *par)
	}
	if *mutate < 0 {
		usageErr("-mutate must be >= 0, got %d", *mutate)
	}
	if *whatif && *focals != "" {
		usageErr("-whatif analyzes a single -focal; it conflicts with a -focals panel")
	}
	if *explain && *whatif {
		usageErr("-explain traces a single query; it conflicts with the -whatif panel")
	}
	if *explain && *focals != "" {
		usageErr("-explain traces a single query; it conflicts with a -focals panel")
	}
	if *whatif && (*mutate > 0 || *svgPath != "" || *focalVec != "") {
		usageErr("-whatif works with a single -focal and no -mutate/-svg/-focal-vec")
	}
	if *whatif && *asJSON {
		usageErr("-whatif prints a text panel; it does not support -json yet")
	}
	if *focalVec != "" && (*focals != "" || *mutate > 0 || *svgPath != "") {
		usageErr("-focal-vec queries a hypothetical record; it conflicts with -focals/-mutate/-svg")
	}
	if *samples < 1 {
		usageErr("-samples must be >= 1, got %d", *samples)
	}
	if *steps < 2 {
		usageErr("-steps must be >= 2, got %d", *steps)
	}

	f, err := os.Open(*dataPath)
	if err != nil {
		fatal(err)
	}
	ds, err := dataset.ReadCSV(f, *dataPath)
	f.Close()
	if err != nil {
		fatal(err)
	}
	if *k < 1 {
		fmt.Fprintf(os.Stderr, "kspr: -k must be at least 1, got %d\n", *k)
		os.Exit(2)
	}
	panel, err := parseFocals(*focals, *focal, ds.Len())
	if err != nil {
		fmt.Fprintf(os.Stderr, "kspr: %v (%s has records 0..%d)\n", err, *dataPath, ds.Len()-1)
		os.Exit(2)
	}
	db, err := kspr.Open(ds.Float64s())
	if err != nil {
		fatal(err)
	}

	var trace *kspr.Trace
	if *explain {
		trace = kspr.NewTrace()
	}
	opts := []kspr.QueryOption{kspr.WithSeed(*seed), kspr.WithParallelism(*par), kspr.WithTrace(trace)}
	switch strings.ToLower(*algo) {
	case "cta":
		opts = append(opts, kspr.WithAlgorithm(kspr.CTA))
	case "p-cta", "pcta":
		opts = append(opts, kspr.WithAlgorithm(kspr.PCTA))
	case "lp-cta", "lpcta":
		opts = append(opts, kspr.WithAlgorithm(kspr.LPCTA))
	case "k-skyband", "kskyband":
		opts = append(opts, kspr.WithAlgorithm(kspr.KSkybandCTA))
	default:
		fatal(fmt.Errorf("unknown algorithm %q", *algo))
	}
	switch strings.ToLower(*space) {
	case "transformed":
	case "original":
		opts = append(opts, kspr.WithSpace(kspr.Original))
	default:
		fatal(fmt.Errorf("unknown space %q", *space))
	}
	if *volumes {
		opts = append(opts, kspr.WithVolumes(20000))
	}

	if *mutate > 0 {
		if len(panel) > 1 || *svgPath != "" {
			fmt.Fprintln(os.Stderr, "kspr: -mutate works with a single -focal and no -svg")
			os.Exit(2)
		}
		runMutateDemo(db, panel[0], *k, *mutate, *seed, opts)
		printExplain(trace, *asJSON)
		return
	}

	if *focalVec != "" {
		vec, err := parseVector(*focalVec, db.Dim())
		if err != nil {
			usageErr("%v", err)
		}
		res, err := db.KSPRVector(vec, *k, opts...)
		if err != nil {
			fatal(err)
		}
		if *asJSON {
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			if err := enc.Encode(res); err != nil {
				fatal(err)
			}
			printExplain(trace, true)
			return
		}
		fmt.Printf("kSPR for hypothetical record %.4f, k=%d, %d records, d=%d\n",
			vec, *k, db.Len(), db.Dim())
		printRegions(res, *volumes)
		printExplain(trace, false)
		return
	}

	if *whatif {
		runWhatIf(db, ds, panel[0], *k, *attr, *target, *steps, *samples, *seed, opts)
		return
	}

	if len(panel) > 1 {
		if *svgPath != "" {
			fmt.Fprintln(os.Stderr, "kspr: -svg works with a single -focal, not a -focals panel")
			os.Exit(2)
		}
		runPanel(db, ds, panel, *k, opts, *asJSON, *volumes)
		return
	}

	res, err := db.KSPR(panel[0], *k, opts...)
	if err != nil {
		fatal(err)
	}

	if *svgPath != "" {
		f, err := os.Create(*svgPath)
		if err != nil {
			fatal(err)
		}
		title := fmt.Sprintf("kSPR regions, focal %d, k=%d", *focal, *k)
		xl, yl := "w1", "w2"
		if len(ds.Attributes) >= 2 {
			xl, yl = ds.Attributes[0], ds.Attributes[1]
		}
		err = kspr.WriteSVG(f, res, kspr.SVGOptions{Title: title, XLabel: xl, YLabel: yl})
		f.Close()
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "kspr: wrote %s\n", *svgPath)
	}

	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			fatal(err)
		}
		printExplain(trace, true)
		return
	}

	name := fmt.Sprintf("record %d", *focal)
	if len(ds.Labels) > *focal {
		name = fmt.Sprintf("%s (record %d)", ds.Labels[*focal], *focal)
	}
	fmt.Printf("kSPR for %s, k=%d, %d records, d=%d\n", name, *k, db.Len(), db.Dim())
	fmt.Printf("focal attributes: %.4f\n", db.Record(*focal))
	printRegions(res, *volumes)
	if *volumes {
		fmt.Printf("impact probability (uniform preferences): %.4f\n", db.ImpactProbability(res, 100000, *seed))
	}
	printExplain(trace, false)
}

// printExplain renders the -explain phase table: wall time, share and hit
// count per engine phase, in execution order. With -json the table goes to
// stderr so it never corrupts the JSON document on stdout.
func printExplain(trace *kspr.Trace, toStderr bool) {
	if trace == nil {
		return
	}
	out := os.Stdout
	if toStderr {
		out = os.Stderr
	}
	phases := trace.Phases()
	total := trace.TotalNs()
	fmt.Fprintf(out, "\nengine phase breakdown:\n")
	fmt.Fprintf(out, "  %-12s %12s %7s %7s\n", "phase", "time", "share", "count")
	for _, p := range phases {
		share := 0.0
		if total > 0 {
			share = 100 * float64(p.Ns) / float64(total)
		}
		fmt.Fprintf(out, "  %-12s %12v %6.1f%% %7d\n", p.Name, p.Duration().Round(time.Microsecond), share, p.Count)
	}
	fmt.Fprintf(out, "  %-12s %12v\n", "total", time.Duration(total).Round(time.Microsecond))
}

// printRegions renders a result's regions as text.
func printRegions(res *kspr.Result, volumes bool) {
	fmt.Printf("%d regions; stats: processed=%d nodes=%d batches=%d baseRank=%d elapsed=%v\n",
		len(res.Regions), res.Stats.ProcessedRecords, res.Stats.CellTreeNodes,
		res.Stats.Batches, res.Stats.BaseRank, res.Stats.Elapsed)
	for i, reg := range res.Regions {
		fmt.Printf("region %d: rank=%d exact=%v witness=%.4f", i, reg.Rank, reg.RankExact, reg.Witness)
		if volumes {
			fmt.Printf(" volume=%.6f", reg.Volume)
		}
		if len(reg.Outscorers) > 0 {
			fmt.Printf(" outscored-by=%v", reg.Outscorers)
		}
		fmt.Println()
		for _, v := range reg.Vertices {
			fmt.Printf("    vertex %.4f\n", v)
		}
	}
}

// parseVector parses a comma-separated attribute vector and validates its
// dimensionality against the dataset.
func parseVector(spec string, dim int) ([]float64, error) {
	parts := strings.Split(spec, ",")
	vec := make([]float64, 0, len(parts))
	for _, p := range parts {
		f, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, fmt.Errorf("invalid -focal-vec entry %q", p)
		}
		vec = append(vec, f)
	}
	if len(vec) != dim {
		return nil, fmt.Errorf("-focal-vec has %d attributes, dataset has %d", len(vec), dim)
	}
	return vec, nil
}

// recordName labels a record for panel output.
func recordName(ds *dataset.Dataset, id int) string {
	if id >= 0 && id < len(ds.Labels) && ds.Labels[id] != "" {
		return fmt.Sprintf("%s (record %d)", ds.Labels[id], id)
	}
	return fmt.Sprintf("record %d", id)
}

// runWhatIf prints the competitive what-if panel for one focal option:
// who takes its preference space, the cheapest reprice reaching the
// target impact, and the impact-price frontier over the swept attribute.
func runWhatIf(db *kspr.DB, ds *dataset.Dataset, focal, k, attr int, target float64,
	steps, samples int, seed int64, opts []kspr.QueryOption) {
	fmt.Printf("what-if panel for %s, k=%d, %d records, d=%d\n",
		recordName(ds, focal), k, db.Len(), db.Dim())
	fmt.Printf("focal attributes: %.4f\n\n", db.Record(focal))

	attrib, err := db.Competitors(focal, k, samples, seed, opts...)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("impact probability: %.4f (misses top-%d on %.4f of preference space)\n",
		attrib.Impact, k, attrib.Miss)
	if len(attrib.Competitors) > 0 {
		fmt.Println("top competitors (miss share = space they take, pressure = outranking inside your regions):")
		limit := len(attrib.Competitors)
		if limit > 8 {
			limit = 8
		}
		for _, c := range attrib.Competitors[:limit] {
			fmt.Printf("  %-32s miss=%.4f pressure=%.4f\n", recordName(ds, c.ID), c.MissShare, c.PressureShare)
		}
	}

	fmt.Printf("\nrepricing attribute %d to reach impact %.2f:\n", attr, target)
	rp, err := db.PriceToTarget(focal, k, kspr.RepriceSpec{
		Attr: attr, Target: target, Samples: samples, Seed: seed,
	}, opts...)
	switch {
	case err != nil && errors.Is(err, kspr.ErrTargetUnreachable):
		fmt.Printf("  unreachable: best achieved impact %.4f at delta %g\n", rp.Impact, rp.Delta)
	case err != nil:
		fatal(err)
	case rp.AlreadyMet:
		fmt.Printf("  already met: baseline impact %.4f >= target\n", rp.Baseline)
	default:
		fmt.Printf("  minimal change: %+.4f (value %.4f -> %.4f), impact %.4f -> %.4f\n",
			rp.Delta, rp.Value-rp.Delta, rp.Value, rp.Baseline, rp.Impact)
		fmt.Printf("  probes: %d (%d kept by the incremental path, keep rate %.0f%%)\n",
			rp.Stats.Probes, rp.Stats.Kept, 100*rp.Stats.KeepRate)
	}

	fmt.Printf("\nimpact-price frontier over attribute %d (%d points):\n", attr, steps)
	curve, err := db.Frontier(focal, k, kspr.FrontierSpec{
		Attr: attr, Steps: steps, Samples: samples, Seed: seed,
	}, opts...)
	if err != nil {
		fatal(err)
	}
	for _, p := range curve.Points {
		marker := ""
		if p.Kept {
			marker = "  (classified empty, no engine run)"
		}
		fmt.Printf("  value %8.4f  delta %+8.4f  impact %.4f  regions %3d%s\n",
			p.Value, p.Delta, p.Impact, p.Regions, marker)
	}
	fmt.Printf("  probes: %d, kept %d (keep rate %.0f%%), avg %.2fms/probe\n",
		curve.Stats.Probes, curve.Stats.Kept, 100*curve.Stats.KeepRate,
		float64(curve.Stats.ProbeNs)/1e6)
}

// parseFocals resolves the -focal / -focals flags into the panel of focal
// record indices, validating every index against the dataset size.
func parseFocals(spec string, focal, n int) ([]int, error) {
	if spec == "" {
		if focal < 0 || focal >= n {
			return nil, fmt.Errorf("-focal %d is out of range", focal)
		}
		return []int{focal}, nil
	}
	parts := strings.Split(spec, ",")
	panel := make([]int, 0, len(parts))
	for _, p := range parts {
		id, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("invalid -focals entry %q", p)
		}
		if id < 0 || id >= n {
			return nil, fmt.Errorf("-focals entry %d is out of range", id)
		}
		panel = append(panel, id)
	}
	return panel, nil
}

// panelItem is the JSON shape of one -focals batch answer.
type panelItem struct {
	Focal  int          `json:"focal"`
	Error  string       `json:"error,omitempty"`
	Result *kspr.Result `json:"result,omitempty"`
}

// runPanel answers the -focals panel as one shared-work batch and prints a
// per-focal summary (or the full JSON results).
func runPanel(db *kspr.DB, ds *dataset.Dataset, panel []int, k int, opts []kspr.QueryOption, asJSON, volumes bool) {
	queries := make([]kspr.BatchQuery, len(panel))
	for i, id := range panel {
		queries[i] = kspr.BatchQuery{FocalID: id}
	}
	outs, err := db.KSPRBatch(queries, k, kspr.WithBatchOptions(opts...))
	if err != nil {
		fatal(err)
	}
	failed := 0
	if asJSON {
		items := make([]panelItem, len(outs))
		for i, o := range outs {
			items[i] = panelItem{Focal: panel[i], Result: o.Result}
			if o.Err != nil {
				items[i].Error = o.Err.Error()
				failed++
			}
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(items); err != nil {
			fatal(err)
		}
	} else {
		fmt.Printf("kSPR batch over %d focals, k=%d, %d records, d=%d\n",
			len(panel), k, db.Len(), db.Dim())
		for i, o := range outs {
			name := fmt.Sprintf("record %d", panel[i])
			if len(ds.Labels) > panel[i] {
				name = fmt.Sprintf("%s (record %d)", ds.Labels[panel[i]], panel[i])
			}
			if o.Err != nil {
				fmt.Printf("%-32s error: %v\n", name, o.Err)
				failed++
				continue
			}
			line := fmt.Sprintf("%-32s %3d regions  processed=%d elapsed=%v",
				name, len(o.Result.Regions), o.Result.Stats.ProcessedRecords, o.Result.Stats.Elapsed)
			if volumes {
				line += fmt.Sprintf("  impact=%.4f", o.Result.TotalVolume())
			}
			fmt.Println(line)
		}
	}
	if failed > 0 {
		os.Exit(1)
	}
}

// runMutateDemo exercises the live-dataset subsystem from the terminal:
// it maintains the focal's kSPR result incrementally while a stream of
// random mutations (dominated-interior inserts, skyline-ish inserts,
// repricings, deletions) churns the dataset, printing per-step decisions
// and verifying the final maintained result against a cold recompute.
func runMutateDemo(db *kspr.DB, focal, k, steps int, seed int64, opts []kspr.QueryOption) {
	lq, err := db.MaintainKSPR(focal, k, opts...)
	if err != nil {
		fatal(err)
	}
	defer lq.Close()
	focalStable, _ := db.StableID(focal)
	res, gen, _ := lq.Result()
	fmt.Printf("maintaining kSPR for record %d (option id %d), k=%d: %d regions at generation %d\n",
		focal, focalStable, k, len(res.Regions), gen)

	rng := rand.New(rand.NewSource(seed))
	d := db.Dim()
	randVec := func(lo, hi float64) []float64 {
		v := make([]float64, d)
		for j := range v {
			v[j] = lo + (hi-lo)*rng.Float64()
		}
		return v
	}
	// pickVictim draws a random option that is not the focal (dense
	// indexes shift across mutations, so resolve by stable id each time).
	pickVictim := func() (int64, bool) {
		if db.Len() < 2 {
			return 0, false
		}
		for {
			id, _ := db.StableID(rng.Intn(db.Len()))
			if id != focalStable {
				return id, true
			}
		}
	}
	prev := lq.Stats()
	for i := 0; i < steps; i++ {
		var (
			desc string
			err  error
		)
		switch i % 4 {
		case 0:
			desc = "insert interior"
			_, err = db.Apply(kspr.Insert(randVec(0.02, 0.25)...))
		case 1:
			desc = "insert skyline-ish"
			_, err = db.Apply(kspr.Insert(randVec(0.8, 1)...))
		case 2:
			desc = "reprice random"
			if id, ok := pickVictim(); ok {
				_, err = db.Apply(kspr.Update(id, randVec(0, 1)...))
			}
		default:
			desc = "delete random"
			if id, ok := pickVictim(); ok {
				_, err = db.Apply(kspr.Delete(id))
			}
		}
		if err != nil {
			fatal(err)
		}
		st := lq.Stats()
		decision := "kept"
		if st.Recomputed > prev.Recomputed {
			decision = "recomputed"
		}
		prev = st
		res, gen, err := lq.Result()
		if err != nil {
			fatal(err)
		}
		fmt.Printf("gen %3d  %-20s %-10s %3d regions\n", gen, desc, decision, len(res.Regions))
	}

	st := lq.Stats()
	fmt.Printf("\n%d mutations: %d kept (%.0f%%), %d recomputed\n",
		steps, st.Kept, 100*float64(st.Kept)/float64(steps), st.Recomputed)

	// Verify: the maintained result must equal a cold query right now.
	res, gen, err = lq.Result()
	if err != nil {
		fatal(err)
	}
	dense, ok := db.DenseIndex(focalStable)
	if !ok {
		fatal(fmt.Errorf("focal option vanished"))
	}
	cold, err := db.KSPR(dense, k, opts...)
	if err != nil {
		fatal(err)
	}
	if len(cold.Regions) != len(res.Regions) {
		fatal(fmt.Errorf("maintained result (%d regions) diverged from cold recompute (%d regions)",
			len(res.Regions), len(cold.Regions)))
	}
	fmt.Printf("verified against cold recompute at generation %d: %d regions match\n", gen, len(cold.Regions))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "kspr:", err)
	os.Exit(1)
}
