// Command kspr answers a single k-Shortlist Preference Region query from
// the terminal: load a CSV dataset (see ksprgen), pick a focal record and
// k, and print the regions as text or JSON.
//
// Example:
//
//	ksprgen -dist IND -n 5000 -d 3 -o d.csv
//	kspr -data d.csv -focal 17 -k 10 -volumes
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	kspr "repro"
	"repro/internal/dataset"
)

func main() {
	var (
		dataPath = flag.String("data", "", "CSV dataset (required; header row, optional leading label column)")
		focal    = flag.Int("focal", 0, "focal record index")
		k        = flag.Int("k", 10, "shortlist size")
		algo     = flag.String("algo", "lp-cta", "algorithm: cta, p-cta, lp-cta, k-skyband")
		space    = flag.String("space", "transformed", "preference space: transformed, original")
		volumes  = flag.Bool("volumes", false, "measure region volumes")
		asJSON   = flag.Bool("json", false, "emit JSON")
		svgPath  = flag.String("svg", "", "write an SVG plot of the regions (d=3 data only)")
		seed     = flag.Int64("seed", 1, "seed for volume estimation")
		par      = flag.Int("parallelism", 0, "query engine goroutines (0 = all cores, 1 = serial)")
	)
	flag.Parse()
	if *dataPath == "" {
		fmt.Fprintln(os.Stderr, "kspr: -data is required")
		flag.Usage()
		os.Exit(2)
	}

	f, err := os.Open(*dataPath)
	if err != nil {
		fatal(err)
	}
	ds, err := dataset.ReadCSV(f, *dataPath)
	f.Close()
	if err != nil {
		fatal(err)
	}
	if *k < 1 {
		fmt.Fprintf(os.Stderr, "kspr: -k must be at least 1, got %d\n", *k)
		os.Exit(2)
	}
	if *focal < 0 || *focal >= ds.Len() {
		fmt.Fprintf(os.Stderr, "kspr: -focal %d is out of range: %s has records 0..%d\n",
			*focal, *dataPath, ds.Len()-1)
		os.Exit(2)
	}
	db, err := kspr.Open(ds.Float64s())
	if err != nil {
		fatal(err)
	}

	opts := []kspr.QueryOption{kspr.WithSeed(*seed), kspr.WithParallelism(*par)}
	switch strings.ToLower(*algo) {
	case "cta":
		opts = append(opts, kspr.WithAlgorithm(kspr.CTA))
	case "p-cta", "pcta":
		opts = append(opts, kspr.WithAlgorithm(kspr.PCTA))
	case "lp-cta", "lpcta":
		opts = append(opts, kspr.WithAlgorithm(kspr.LPCTA))
	case "k-skyband", "kskyband":
		opts = append(opts, kspr.WithAlgorithm(kspr.KSkybandCTA))
	default:
		fatal(fmt.Errorf("unknown algorithm %q", *algo))
	}
	switch strings.ToLower(*space) {
	case "transformed":
	case "original":
		opts = append(opts, kspr.WithSpace(kspr.Original))
	default:
		fatal(fmt.Errorf("unknown space %q", *space))
	}
	if *volumes {
		opts = append(opts, kspr.WithVolumes(20000))
	}

	res, err := db.KSPR(*focal, *k, opts...)
	if err != nil {
		fatal(err)
	}

	if *svgPath != "" {
		f, err := os.Create(*svgPath)
		if err != nil {
			fatal(err)
		}
		title := fmt.Sprintf("kSPR regions, focal %d, k=%d", *focal, *k)
		xl, yl := "w1", "w2"
		if len(ds.Attributes) >= 2 {
			xl, yl = ds.Attributes[0], ds.Attributes[1]
		}
		err = kspr.WriteSVG(f, res, kspr.SVGOptions{Title: title, XLabel: xl, YLabel: yl})
		f.Close()
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "kspr: wrote %s\n", *svgPath)
	}

	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			fatal(err)
		}
		return
	}

	name := fmt.Sprintf("record %d", *focal)
	if len(ds.Labels) > *focal {
		name = fmt.Sprintf("%s (record %d)", ds.Labels[*focal], *focal)
	}
	fmt.Printf("kSPR for %s, k=%d, %d records, d=%d\n", name, *k, db.Len(), db.Dim())
	fmt.Printf("focal attributes: %.4f\n", db.Record(*focal))
	fmt.Printf("%d regions; stats: processed=%d nodes=%d batches=%d baseRank=%d elapsed=%v\n",
		len(res.Regions), res.Stats.ProcessedRecords, res.Stats.CellTreeNodes,
		res.Stats.Batches, res.Stats.BaseRank, res.Stats.Elapsed)
	for i, reg := range res.Regions {
		fmt.Printf("region %d: rank=%d exact=%v witness=%.4f", i, reg.Rank, reg.RankExact, reg.Witness)
		if *volumes {
			fmt.Printf(" volume=%.6f", reg.Volume)
		}
		fmt.Println()
		for _, v := range reg.Vertices {
			fmt.Printf("    vertex %.4f\n", v)
		}
	}
	if *volumes {
		fmt.Printf("impact probability (uniform preferences): %.4f\n", db.ImpactProbability(res, 100000, *seed))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "kspr:", err)
	os.Exit(1)
}
