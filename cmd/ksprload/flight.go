package main

// The harness side of the server's flight recorder: fetching wide-event
// evidence from the stack under test when a run fails its verdict, and the
// post-measurement flight check (-inject-errors / -check-flight) that
// proves the recorder captured every injected error plus at least one
// sampled normal request. Both run AFTER the timed phase, so the
// BENCH_<name>.json numbers are never affected.

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"
)

// flightWire is the subset of one /v1/debug:flight wide event the harness
// reads.
type flightWire struct {
	RequestID string `json:"request_id"`
	Endpoint  string `json:"endpoint"`
	Status    int    `json:"status"`
	Kind      string `json:"kind"`
}

// flightEnvelope is the /v1/debug:flight response envelope.
type flightEnvelope struct {
	Events []flightWire `json:"events"`
}

// fetchFlight reads /v1/debug:flight (with an optional raw query string)
// and returns the raw JSON body.
func (r *runner) fetchFlight(query string) ([]byte, error) {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	url := r.base + "/v1/debug:flight"
	if query != "" {
		url += "?" + query
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, err
	}
	resp, err := r.client.Do(req)
	if err != nil {
		return nil, fmt.Errorf("fetching %s: %w", url, err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("%s returned %d: %s", url, resp.StatusCode, raw)
	}
	return raw, nil
}

// flightEvidence fetches the offending wide events (errors plus the slow
// tail) for a failed run's report; errors are swallowed into a nil return
// because evidence is best-effort — the verdict already failed.
func (r *runner) flightEvidence() json.RawMessage {
	raw, err := r.fetchFlight("errors_only=true&limit=20")
	if err != nil {
		fmt.Printf("ksprload: flight evidence unavailable: %v\n", err)
		return nil
	}
	return raw
}

// flightPhase injects cfg.injectErrors known-bad requests (a query against
// a dataset that does not exist, each tracked by its X-Request-Id) and,
// with -check-flight, asserts the recorder kept every one of them AND at
// least one sampled normal request from the measurement phase.
func (r *runner) flightPhase() error {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	ids := make(map[string]bool, r.cfg.injectErrors)
	for i := 0; i < r.cfg.injectErrors; i++ {
		resp, _, err := r.post(ctx, "/v1/kspr",
			map[string]any{"dataset": "flight-check-missing", "focal": 0, "k": 1})
		if err != nil {
			return fmt.Errorf("flight check: injecting error %d: %w", i, err)
		}
		if resp.StatusCode != http.StatusNotFound {
			return fmt.Errorf("flight check: injected error %d got status %d, want 404", i, resp.StatusCode)
		}
		id := resp.Header.Get("X-Request-Id")
		if id == "" {
			return fmt.Errorf("flight check: injected error %d carried no X-Request-Id", i)
		}
		ids[id] = false
	}
	if !r.cfg.checkFlight {
		return nil
	}
	raw, err := r.fetchFlight("")
	if err != nil {
		return fmt.Errorf("flight check: %w", err)
	}
	var env flightEnvelope
	if err := json.Unmarshal(raw, &env); err != nil {
		return fmt.Errorf("flight check: parsing /v1/debug:flight: %w", err)
	}
	sampled := 0
	for _, ev := range env.Events {
		if ev.Kind == "sampled" {
			sampled++
		}
		if seen, ok := ids[ev.RequestID]; ok && !seen {
			if ev.Kind != "error" || ev.Status != http.StatusNotFound {
				return fmt.Errorf("flight check: injected request %s captured as kind=%q status=%d, want error/404",
					ev.RequestID, ev.Kind, ev.Status)
			}
			ids[ev.RequestID] = true
		}
	}
	missing := 0
	for _, seen := range ids {
		if !seen {
			missing++
		}
	}
	if missing > 0 {
		return fmt.Errorf("flight check: %d of %d injected errors missing from /v1/debug:flight", missing, len(ids))
	}
	if sampled == 0 {
		return fmt.Errorf("flight check: no sampled normal requests in /v1/debug:flight (%d events)", len(env.Events))
	}
	fmt.Printf("ksprload: flight check ok — %d injected errors captured, %d sampled normals retained\n",
		len(ids), sampled)
	return nil
}
