// The traffic side of the harness: dataset setup, the closed/open-hybrid
// worker loop, and the four request classes (kspr, batch, mutate,
// whatif). Every response is handed to the verifier before it counts.
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Request class names (also the mix keys and latency map keys).
const (
	classKSPR   = "kspr"
	classBatch  = "batch"
	classMutate = "mutate"
	classWhatIf = "whatif"
)

// dsState is the harness-side view of one loaded dataset: the verifier's
// generation floor, and the stable ids of harness-inserted records (the
// only ones update/delete mutations may target, so the live record count
// never drops below the initial n and every dense focal in [0, n) stays
// valid for the whole run).
type dsState struct {
	name string
	// gen is the highest generation any response for this dataset has
	// reported; later requests must never observe less (read-your-
	// generation across the whole fleet of workers).
	gen atomic.Uint64
	// mu serializes mutation batches per dataset, guarding inserted.
	mu       sync.Mutex
	inserted []int64
}

// maxFloor raises the dataset's generation floor to g.
func (d *dsState) maxFloor(g uint64) {
	for {
		cur := d.gen.Load()
		if g <= cur || d.gen.CompareAndSwap(cur, g) {
			return
		}
	}
}

// runner drives the load phase against one target.
type runner struct {
	cfg    *config
	base   string
	client *http.Client
	ds     []*dsState
	ver    *verifier
	stats  *collector
	// tokens paces workers when -rate > 0 (open-loop arrivals).
	tokens chan struct{}
	// classes is the mix expanded into a weighted pick table.
	classes []string
}

func newRunner(cfg *config, base string) (*runner, error) {
	var classes []string
	for _, c := range []string{classKSPR, classBatch, classMutate, classWhatIf} {
		for i := 0; i < cfg.mix[c]; i++ {
			classes = append(classes, c)
		}
	}
	r := &runner{
		cfg:  cfg,
		base: base,
		client: &http.Client{
			Timeout: 2 * time.Minute,
			Transport: &http.Transport{
				MaxIdleConns:        cfg.conc * 2,
				MaxIdleConnsPerHost: cfg.conc * 2,
			},
		},
		ver:     newVerifier(),
		stats:   newCollector(),
		classes: classes,
	}
	return r, nil
}

// loadDatasets installs the synthetic datasets over HTTP and reads the
// server's CPU-budget size (the 429 verifier needs it).
func (r *runner) loadDatasets() error {
	for i := 0; i < r.cfg.datasets; i++ {
		name := fmt.Sprintf("load%d", i)
		body := fmt.Sprintf(`{"name":%q,"generate":{"dist":"IND","n":%d,"d":%d,"seed":%d}}`,
			name, r.cfg.n, r.cfg.d, r.cfg.seed+int64(i))
		resp, err := r.client.Post(r.base+"/v1/datasets", "application/json", strings.NewReader(body))
		if err != nil {
			return fmt.Errorf("load dataset %s: %w", name, err)
		}
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("load dataset %s: status %d: %s", name, resp.StatusCode, raw)
		}
		var info struct {
			Generation uint64 `json:"generation"`
		}
		if err := json.Unmarshal(raw, &info); err != nil {
			return fmt.Errorf("load dataset %s: %w", name, err)
		}
		d := &dsState{name: name}
		d.gen.Store(info.Generation)
		r.ds = append(r.ds, d)
	}
	slots, err := r.budgetSlots()
	if err != nil {
		return err
	}
	r.ver.budgetSlots = slots
	return nil
}

// budgetSlots reads cpu.extra_slots from /metrics.
func (r *runner) budgetSlots() (int, error) {
	resp, err := r.client.Get(r.base + "/metrics")
	if err != nil {
		return 0, fmt.Errorf("read /metrics: %w", err)
	}
	defer resp.Body.Close()
	var m struct {
		CPU struct {
			ExtraSlots int `json:"extra_slots"`
		} `json:"cpu"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		return 0, fmt.Errorf("decode /metrics: %w", err)
	}
	return m.CPU.ExtraSlots, nil
}

// drive runs the timed worker phase and returns the measured wall time.
func (r *runner) drive() time.Duration {
	ctx, cancel := context.WithCancel(context.Background())
	if r.cfg.rate > 0 {
		r.tokens = make(chan struct{}, r.cfg.conc*2)
		interval := time.Duration(float64(time.Second) / r.cfg.rate)
		go func() {
			tick := time.NewTicker(interval)
			defer tick.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-tick.C:
					select {
					case r.tokens <- struct{}{}:
					default: // workers saturated: shed the arrival
					}
				}
			}
		}()
	}
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < r.cfg.conc; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			r.worker(ctx, id)
		}(w)
	}
	time.Sleep(r.cfg.duration)
	cancel()
	wg.Wait()
	return time.Since(start)
}

// worker issues requests until ctx is cancelled. Each worker owns its RNG
// (seeded off the run seed and worker id) so runs are reproducible at a
// fixed concurrency.
func (r *runner) worker(ctx context.Context, id int) {
	rng := rand.New(rand.NewSource(r.cfg.seed + int64(id)*7919))
	zipfDS := rand.NewZipf(rng, r.cfg.zipfS, 1, uint64(len(r.ds)-1))
	zipfFocal := rand.NewZipf(rng, r.cfg.zipfS, 1, uint64(r.cfg.n-1))
	for ctx.Err() == nil {
		if r.tokens != nil {
			select {
			case <-r.tokens:
			case <-ctx.Done():
				return
			}
		}
		class := r.classes[rng.Intn(len(r.classes))]
		d := r.ds[int(zipfDS.Uint64())]
		start := time.Now()
		var err error
		switch class {
		case classKSPR:
			err = r.doKSPR(ctx, d, int(zipfFocal.Uint64()), rng)
		case classBatch:
			err = r.doBatch(ctx, d, rng, zipfFocal)
		case classMutate:
			err = r.doMutate(ctx, d, rng)
		case classWhatIf:
			err = r.doWhatIf(ctx, d, int(zipfFocal.Uint64()))
		}
		if ctx.Err() != nil && err != nil {
			return // shutdown race: don't count a cancellation as an error
		}
		r.stats.record(class, time.Since(start), err)
	}
}

// ---- wire helpers --------------------------------------------------------

// errHTTP marks a request-level failure (non-2xx other than handled 429s,
// transport errors, malformed bodies). err429 marks a 429 response that
// passed its sanity checks — counted separately, not as an error.
var err429 = fmt.Errorf("backpressure (429)")

// post sends a JSON body and returns the response with its raw body read.
func (r *runner) post(ctx context.Context, path string, body any) (*http.Response, []byte, error) {
	raw, err := json.Marshal(body)
	if err != nil {
		return nil, nil, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, r.base+path, bytes.NewReader(raw))
	if err != nil {
		return nil, nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := r.client.Do(req)
	if err != nil {
		return nil, nil, err
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, nil, err
	}
	return resp, out, nil
}

// queryWire is the subset of a kSPR query response the harness reads. The
// raw region payload is kept for byte-level recompute comparison.
type queryWire struct {
	Generation uint64          `json:"generation"`
	Focal      int             `json:"focal"`
	K          int             `json:"k"`
	Cached     bool            `json:"cached"`
	Regions    json.RawMessage `json:"regions"`
}

// doKSPR issues one single-query request and runs the generation and
// (sampled) cache-vs-cold-recompute checks.
func (r *runner) doKSPR(ctx context.Context, d *dsState, focal int, rng *rand.Rand) error {
	floor := d.gen.Load()
	resp, body, err := r.post(ctx, "/v1/kspr", map[string]any{
		"dataset": d.name, "focal": focal, "k": r.cfg.k,
	})
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("kspr %s focal %d: status %d: %.200s", d.name, focal, resp.StatusCode, body)
	}
	var q queryWire
	if err := json.Unmarshal(body, &q); err != nil {
		return fmt.Errorf("kspr decode: %w", err)
	}
	r.ver.checkGeneration(d, floor, q.Generation, classKSPR)
	if q.Cached {
		r.stats.cacheHits.Add(1)
		if rng.Float64() < r.cfg.verifySample {
			r.verifyRecompute(ctx, d, focal, &q)
		}
	}
	return nil
}

// verifyRecompute re-runs a cache-served query with no_cache and demands
// a byte-identical region payload at the same generation. A generation
// moved by a concurrent mutation makes the comparison meaningless; that
// is counted as skipped, not passed.
func (r *runner) verifyRecompute(ctx context.Context, d *dsState, focal int, cached *queryWire) {
	resp, body, err := r.post(ctx, "/v1/kspr", map[string]any{
		"dataset": d.name, "focal": focal, "k": r.cfg.k, "no_cache": true,
	})
	if err != nil || resp.StatusCode != http.StatusOK {
		r.ver.recomputeSkips.Add(1) // transient failure: the main loop still measures it
		return
	}
	var cold queryWire
	if err := json.Unmarshal(body, &cold); err != nil {
		r.ver.recomputeSkips.Add(1)
		return
	}
	if cold.Generation != cached.Generation {
		r.ver.recomputeSkips.Add(1)
		return
	}
	r.ver.recomputeChecks.Add(1)
	if !jsonEqual(cached.Regions, cold.Regions) {
		r.ver.violate("cache-vs-recompute: %s focal %d gen %d: cached regions differ from cold recompute",
			d.name, focal, cached.Generation)
	}
}

// jsonEqual compares two raw JSON fragments modulo whitespace.
func jsonEqual(a, b json.RawMessage) bool {
	var ca, cb bytes.Buffer
	if json.Compact(&ca, a) != nil || json.Compact(&cb, b) != nil {
		return false
	}
	return bytes.Equal(ca.Bytes(), cb.Bytes())
}

// batchLineWire is one NDJSON line of a batch response.
type batchLineWire struct {
	Index  int        `json:"index"`
	Error  string     `json:"error,omitempty"`
	Status int        `json:"status,omitempty"`
	Result *queryWire `json:"result,omitempty"`
}

// doBatch issues one NDJSON batch request. With probability -par-prob it
// asks for engine parallelism 2, which is what makes the CPU budget — and
// therefore the 429 backpressure path — observable under load.
func (r *runner) doBatch(ctx context.Context, d *dsState, rng *rand.Rand, zipfFocal *rand.Zipf) error {
	nq := r.cfg.batchMin + rng.Intn(r.cfg.batchMax-r.cfg.batchMin+1)
	queries := make([]map[string]any, nq)
	for i := range queries {
		queries[i] = map[string]any{"focal": int(zipfFocal.Uint64())}
	}
	req := map[string]any{"dataset": d.name, "k": r.cfg.k, "queries": queries}
	par := 0
	if rng.Float64() < r.cfg.parProb {
		par = 2
		req["parallelism"] = par
	}
	floor := d.gen.Load()
	resp, body, err := r.post(ctx, "/v1/kspr:batch", req)
	if err != nil {
		return err
	}
	if resp.StatusCode == http.StatusTooManyRequests {
		r.ver.check429(classBatch, par, resp.Header.Get("Retry-After"), body)
		return err429
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("batch %s: status %d: %.200s", d.name, resp.StatusCode, body)
	}

	// Exactly one line per item, every index in range, none twice.
	seen := make([]int, nq)
	var itemErr error
	sc := bufio.NewScanner(bytes.NewReader(body))
	sc.Buffer(make([]byte, 0, 64<<10), 16<<20)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var bl batchLineWire
		if err := json.Unmarshal(line, &bl); err != nil {
			return fmt.Errorf("batch %s: bad stream line: %w", d.name, err)
		}
		if bl.Index < 0 || bl.Index >= nq {
			r.ver.violate("batch-lines: %s: line index %d outside [0,%d)", d.name, bl.Index, nq)
			continue
		}
		seen[bl.Index]++
		if bl.Error != "" {
			itemErr = fmt.Errorf("batch %s item %d: status %d: %s", d.name, bl.Index, bl.Status, bl.Error)
			continue
		}
		if bl.Result != nil {
			r.ver.checkGeneration(d, floor, bl.Result.Generation, classBatch)
			if bl.Result.Cached {
				r.stats.cacheHits.Add(1)
			}
		}
	}
	r.ver.batchLineChecks.Add(uint64(nq))
	for i, n := range seen {
		if n != 1 {
			r.ver.violate("batch-lines: %s: item %d settled %d times (want exactly 1)", d.name, i, n)
		}
	}
	return itemErr
}

// doMutate applies one small atomic mutation batch. Updates and deletes
// only ever target records this harness inserted, so the dataset never
// shrinks below its initial n records and mutation errors are real
// server bugs, not harness races. The per-dataset lock only reserves and
// returns ids — it is NOT held across the HTTP round trip. An earlier
// version held it through the request, and the harness's own mutex
// profile flagged that as the run's dominant contention point (2.6s of
// lock delay in a 5s run): deletes are safe because a reserved id leaves
// `inserted` before the lock drops, and concurrent updates of one id are
// exactly the conflicting-seller traffic the server must serialize anyway.
func (r *runner) doMutate(ctx context.Context, d *dsState, rng *rand.Rand) error {
	nops := 1 + rng.Intn(3)
	ops := make([]map[string]any, 0, nops)
	// Update and delete targets are both reserved (popped from
	// d.inserted) while the batch is in flight, so no two concurrent
	// batches ever address the same id — an in-flight update racing a
	// committed delete would otherwise be a harness-made 400.
	var updated, deleted []int64
	d.mu.Lock()
	for i := 0; i < nops; i++ {
		vec := make([]float64, r.cfg.d)
		for j := range vec {
			vec[j] = rng.Float64()
		}
		if len(d.inserted) == 0 || rng.Float64() < 0.5 {
			ops = append(ops, map[string]any{"op": "insert", "values": vec})
			continue
		}
		idx := rng.Intn(len(d.inserted))
		id := d.inserted[idx]
		d.inserted = append(d.inserted[:idx], d.inserted[idx+1:]...)
		if rng.Float64() < 0.5 {
			updated = append(updated, id)
			ops = append(ops, map[string]any{"op": "update", "id": id, "values": vec})
		} else {
			deleted = append(deleted, id)
			ops = append(ops, map[string]any{"op": "delete", "id": id})
		}
	}
	d.mu.Unlock()

	// returnIDs makes ids eligible targets again: fresh insert ids on
	// success, reserved delete ids back on failure (outcome unknown, but
	// a failed delete leaves the record alive — re-deleting is safe, and
	// re-deleting an actually-deleted id is a server error the run reports).
	returnIDs := func(ids []int64) {
		if len(ids) == 0 {
			return
		}
		d.mu.Lock()
		d.inserted = append(d.inserted, ids...)
		d.mu.Unlock()
	}

	floor := d.gen.Load()
	resp, body, err := r.post(ctx, "/v1/datasets/"+d.name+":mutate", map[string]any{"mutations": ops})
	if err != nil {
		returnIDs(append(updated, deleted...))
		return err
	}
	if resp.StatusCode != http.StatusOK {
		returnIDs(append(updated, deleted...))
		return fmt.Errorf("mutate %s: status %d: %.200s", d.name, resp.StatusCode, body)
	}
	var ack struct {
		Generation uint64  `json:"generation"`
		IDs        []int64 `json:"ids"`
	}
	if err := json.Unmarshal(body, &ack); err != nil {
		returnIDs(updated)
		return fmt.Errorf("mutate decode: %w", err)
	}
	r.ver.checkGeneration(d, floor, ack.Generation, classMutate)
	fresh := updated
	for i, op := range ops {
		if op["op"] == "insert" && i < len(ack.IDs) {
			fresh = append(fresh, ack.IDs[i])
		}
	}
	returnIDs(fresh)
	return nil
}

// doWhatIf issues one competitor-attribution call (the what-if layer's
// cheapest production query).
func (r *runner) doWhatIf(ctx context.Context, d *dsState, focal int) error {
	floor := d.gen.Load()
	url := fmt.Sprintf("%s/v1/impact:competitors?dataset=%s&focal=%d&k=%d&samples=500&seed=1",
		r.base, d.name, focal, r.cfg.k)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	resp, err := r.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("whatif %s focal %d: status %d: %.200s", d.name, focal, resp.StatusCode, body)
	}
	var out struct {
		Generation uint64 `json:"generation"`
		Cached     bool   `json:"cached"`
	}
	if err := json.Unmarshal(body, &out); err != nil {
		return fmt.Errorf("whatif decode: %w", err)
	}
	r.ver.checkGeneration(d, floor, out.Generation, classWhatIf)
	if out.Cached {
		r.stats.cacheHits.Add(1)
	}
	return nil
}

// ---- stats ---------------------------------------------------------------

// collector aggregates per-class latencies and error counts across
// workers. Lock granularity is one mutex over the whole record path; at
// harness request rates this is far off any measured path.
type collector struct {
	mu        sync.Mutex
	lat       map[string][]int64
	errs      map[string]uint64
	n429      map[string]uint64
	examples  []string
	cacheHits atomic.Uint64
}

func newCollector() *collector {
	return &collector{
		lat:  map[string][]int64{},
		errs: map[string]uint64{},
		n429: map[string]uint64{},
	}
}

func (c *collector) record(class string, elapsed time.Duration, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.lat[class] = append(c.lat[class], elapsed.Nanoseconds())
	switch {
	case err == nil:
	case err == err429:
		c.n429[class]++
	default:
		c.errs[class]++
		if len(c.examples) < 8 {
			c.examples = append(c.examples, err.Error())
		}
	}
}

// totalRequests is the number of requests the timed phase recorded.
func (c *collector) totalRequests() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	var n uint64
	for _, l := range c.lat {
		n += uint64(len(l))
	}
	return n
}

func (c *collector) errExamples() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]string(nil), c.examples...)
}

// summarize folds the collector and verifier into the summary file.
func (r *runner) summarize(elapsed time.Duration) *loadSummary {
	c := r.stats
	c.mu.Lock()
	defer c.mu.Unlock()
	sum := &loadSummary{
		Name:        r.cfg.name,
		Datasets:    r.cfg.datasets,
		N:           r.cfg.n,
		D:           r.cfg.d,
		K:           r.cfg.k,
		Seed:        r.cfg.seed,
		ZipfS:       r.cfg.zipfS,
		DurationSec: elapsed.Seconds(),
		Concurrency: r.cfg.conc,
		RateTarget:  r.cfg.rate,
		Mix:         r.cfg.mix,
		CacheHits:   c.cacheHits.Load(),
		Latency:     map[string]latencySummary{},
	}
	fillHost(sum)
	var all []int64
	for class, lats := range c.lat {
		sum.Latency[class] = digest(lats)
		all = append(all, lats...)
		sum.Requests += uint64(len(lats))
	}
	sum.Latency["all"] = digest(all)
	for _, n := range c.errs {
		sum.Errors += n
	}
	for _, n := range c.n429 {
		sum.Resp429 += n
	}
	if sum.Requests > 0 {
		sum.ErrorRate = float64(sum.Errors) / float64(sum.Requests)
		sum.Rate429 = float64(sum.Resp429) / float64(sum.Requests)
	}
	if elapsed > 0 {
		sum.Throughput = float64(sum.Requests) / elapsed.Seconds()
	}
	sum.Verify = r.ver.summary()
	return sum
}
