// Command ksprload is the million-user traffic harness: a closed/open-
// hybrid load generator that replays realistic traffic mixes against a
// real ksprd serving stack and doubles as a correctness verifier.
//
// Traffic is a configurable mix of the four production request classes —
// single kSPR queries, shared-work NDJSON batches, atomic dataset
// mutation batches, and what-if competitor attribution — with
// Zipf-distributed focal records and datasets, so the sharded LRU result
// cache and the mutation-driven cache-migration paths are exercised the
// way skewed real traffic exercises them. By default the run is a closed
// loop of -conc workers; -rate adds an open-loop arrival schedule on top
// (workers pull paced tokens, so the offered load is rate-shaped but
// still bounded by the worker count — the hybrid that avoids unbounded
// queueing while still measuring queueing delay).
//
// Every response feeds the invariant verifier (see verify.go): monotone
// generation tokens per dataset (read-your-generation), exactly one
// NDJSON line per batch item, cache-served results byte-identical to a
// sampled cold recompute, and 429s only under genuine CPU-budget
// exhaustion. Violations fail the run — load testing is a correctness
// test here, not just a perf test.
//
// The run's throughput, per-class p50/p95/p99 latency, error and 429
// rates, and the verifier's tally land in BENCH_<name>.json
// (BENCH_load.json by default), which scripts/benchcmp gates exactly like
// the core ns/op file. With -addr empty the harness self-hosts the full
// ksprd serving stack (internal/server) on a loopback TCP listener;
// point -addr at a running daemon to load-test a remote instance.
//
//	ksprload -duration 10s -conc 8                      # self-hosted
//	ksprload -addr http://127.0.0.1:8080 -duration 30s  # external ksprd
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"net"
	"net/http"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/server"
)

func main() {
	var cfg config
	flag.StringVar(&cfg.addr, "addr", "", "base URL of a running ksprd (empty = self-host the serving stack on loopback)")
	flag.DurationVar(&cfg.duration, "duration", 10*time.Second, "measurement duration")
	flag.IntVar(&cfg.conc, "conc", 8, "closed-loop worker count")
	flag.Float64Var(&cfg.rate, "rate", 0, "open-loop arrival rate in req/s across all workers (0 = pure closed loop)")
	flag.StringVar(&cfg.mixSpec, "mix", "kspr=60,batch=15,mutate=15,whatif=10", "traffic mix as class=weight pairs (classes: kspr, batch, mutate, whatif)")
	flag.IntVar(&cfg.datasets, "datasets", 3, "number of synthetic datasets to load and spread traffic across")
	flag.IntVar(&cfg.n, "n", 400, "records per dataset")
	flag.IntVar(&cfg.d, "d", 3, "attributes per record")
	flag.IntVar(&cfg.k, "k", 5, "kSPR shortlist size")
	flag.Float64Var(&cfg.zipfS, "zipf-s", 1.2, "Zipf skew for focal and dataset selection (> 1)")
	flag.Int64Var(&cfg.seed, "seed", 1, "random seed (dataset generation and traffic)")
	flag.Float64Var(&cfg.verifySample, "verify-sample", 0.05, "probability a cache-served result is checked against a cold recompute")
	flag.Float64Var(&cfg.parProb, "par-prob", 0.3, "probability a batch asks for engine parallelism 2 (exercises the 429 path)")
	flag.IntVar(&cfg.batchMin, "batch-min", 3, "minimum queries per batch request")
	flag.IntVar(&cfg.batchMax, "batch-max", 8, "maximum queries per batch request")
	flag.StringVar(&cfg.name, "name", "load", "summary name: results land in BENCH_<name>.json")
	flag.Float64Var(&cfg.maxErrorRate, "max-error-rate", 0, "fail the run when the non-429 error rate exceeds this fraction")
	flag.IntVar(&cfg.serverWorkers, "server-workers", 4, "self-host: worker-pool size")
	flag.IntVar(&cfg.serverQueue, "server-queue", 64, "self-host: worker-pool queue length")
	flag.IntVar(&cfg.serverSlots, "server-slots", 1, "self-host: extra CPU slots in the parallelism budget (-1 = zero budget)")
	flag.StringVar(&cfg.cpuProfile, "cpuprofile", "", "write a CPU profile of the run (self-host: includes the serving stack)")
	flag.StringVar(&cfg.mutexProfile, "mutexprofile", "", "write a mutex-contention profile of the run")
	flag.IntVar(&cfg.injectErrors, "inject-errors", 0, "after the timed phase, send this many known-bad requests tracked by X-Request-Id")
	flag.BoolVar(&cfg.checkFlight, "check-flight", false, "assert the flight recorder captured every injected error and >= 1 sampled normal")
	flag.BoolVar(&cfg.checkHealth, "check-health", false, "assert the health verdict: healthy after a clean run, breaching (with a journaled slo_burn) after a driven error storm")
	flag.Parse()

	if err := cfg.validate(); err != nil {
		fmt.Fprintln(os.Stderr, "ksprload:", err)
		flag.Usage()
		os.Exit(2)
	}
	if err := run(&cfg); err != nil {
		fmt.Fprintln(os.Stderr, "ksprload:", err)
		os.Exit(1)
	}
}

// config is the parsed harness configuration.
type config struct {
	addr         string
	duration     time.Duration
	conc         int
	rate         float64
	mixSpec      string
	mix          map[string]int
	datasets     int
	n, d, k      int
	zipfS        float64
	seed         int64
	verifySample float64
	parProb      float64
	batchMin     int
	batchMax     int
	name         string
	maxErrorRate float64

	serverWorkers int
	serverQueue   int
	serverSlots   int

	cpuProfile   string
	mutexProfile string

	injectErrors int
	checkFlight  bool
	checkHealth  bool
}

func (c *config) validate() error {
	var err error
	if c.mix, err = parseMix(c.mixSpec); err != nil {
		return err
	}
	switch {
	case c.duration <= 0:
		return fmt.Errorf("-duration must be positive")
	case c.conc < 1:
		return fmt.Errorf("-conc must be >= 1")
	case c.rate < 0:
		return fmt.Errorf("-rate must be >= 0")
	case c.datasets < 1:
		return fmt.Errorf("-datasets must be >= 1")
	case c.n < 10 || c.d < 2 || c.k < 1:
		return fmt.Errorf("workload needs -n >= 10, -d >= 2, -k >= 1")
	case c.zipfS <= 1:
		return fmt.Errorf("-zipf-s must be > 1 (Zipf skew)")
	case c.verifySample < 0 || c.verifySample > 1:
		return fmt.Errorf("-verify-sample must be in [0, 1]")
	case c.parProb < 0 || c.parProb > 1:
		return fmt.Errorf("-par-prob must be in [0, 1]")
	case c.batchMin < 1 || c.batchMax < c.batchMin:
		return fmt.Errorf("need 1 <= -batch-min <= -batch-max")
	case c.maxErrorRate < 0 || c.maxErrorRate > 1:
		return fmt.Errorf("-max-error-rate must be in [0, 1]")
	case c.injectErrors < 0:
		return fmt.Errorf("-inject-errors must be >= 0")
	case c.checkFlight && c.injectErrors < 1:
		return fmt.Errorf("-check-flight needs -inject-errors >= 1")
	}
	return nil
}

// parseMix parses "kspr=60,batch=15,mutate=15,whatif=10" into weights.
func parseMix(s string) (map[string]int, error) {
	mix := map[string]int{}
	total := 0
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, raw, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("mix entry %q: want class=weight", part)
		}
		switch name {
		case classKSPR, classBatch, classMutate, classWhatIf:
		default:
			return nil, fmt.Errorf("mix entry %q: unknown class (want kspr, batch, mutate, whatif)", part)
		}
		w, err := strconv.Atoi(raw)
		if err != nil || w < 0 {
			return nil, fmt.Errorf("mix entry %q: weight must be a non-negative integer", part)
		}
		mix[name] = w
		total += w
	}
	if total <= 0 {
		return nil, fmt.Errorf("mix %q has no positive weights", s)
	}
	return mix, nil
}

// run executes the whole harness: target setup, dataset load, the timed
// worker phase, and the summary + verdict.
func run(cfg *config) error {
	base := cfg.addr
	var shutdown func()
	if base == "" {
		var err error
		base, shutdown, err = selfHost(cfg)
		if err != nil {
			return err
		}
		defer shutdown()
	}
	base = strings.TrimRight(base, "/")

	r, err := newRunner(cfg, base)
	if err != nil {
		return err
	}
	if err := r.loadDatasets(); err != nil {
		return err
	}
	stopProfiles, err := startProfiles(cfg)
	if err != nil {
		return err
	}
	defer stopProfiles()
	fmt.Printf("ksprload: %d datasets (n=%d d=%d) at %s, mix %v, conc %d, %v\n",
		cfg.datasets, cfg.n, cfg.d, base, cfg.mixSpec, cfg.conc, cfg.duration)

	elapsed := r.drive()
	sum := r.summarize(elapsed)
	if h, err := r.fetchHealth(); err == nil {
		sum.HistoryTicks = h.History.Ticks
	}
	out := fmt.Sprintf("BENCH_%s.json", cfg.name)
	if err := writeSummary(out, sum); err != nil {
		return err
	}
	printSummary(sum, out)

	var verdict error
	switch {
	case sum.Verify.Violations > 0:
		verdict = fmt.Errorf("%d invariant violation(s): %s",
			sum.Verify.Violations, strings.Join(sum.Verify.Examples, "; "))
	case sum.ErrorRate > cfg.maxErrorRate:
		verdict = fmt.Errorf("error rate %.4f exceeds the %.4f limit: %s",
			sum.ErrorRate, cfg.maxErrorRate, strings.Join(r.stats.errExamples(), "; "))
	}
	if verdict != nil {
		// Pull the offending wide events from the stack under test and embed
		// them in the failure report, so the evidence ships with the verdict.
		if raw := r.flightEvidence(); raw != nil {
			sum.FlightEvidence = raw
			if err := writeSummary(out, sum); err != nil {
				return err
			}
			fmt.Printf("ksprload: embedded flight-recorder evidence (%d bytes) in %s\n", len(raw), out)
		}
		return verdict
	}
	if cfg.injectErrors > 0 {
		// Deliberately after the verdict: injection would pollute the
		// evidence a failed run embeds, and runs after the timed phase so
		// the BENCH numbers never see it.
		if err := r.flightPhase(); err != nil {
			return err
		}
	}
	if cfg.checkHealth {
		// Last of all: the health phase ends with the verdict deliberately
		// breaching, which would invalidate any check that ran after it.
		if err := r.healthPhase(); err != nil {
			return err
		}
	}
	return nil
}

// selfHost starts the full ksprd serving stack (the same internal/server
// wiring cmd/ksprd uses) on a loopback TCP listener and returns its base
// URL plus a shutdown func. MaxParallelism is pinned above 1 so parallel
// batch asks reach the CPU budget even on single-core machines — the 429
// backpressure path must be reachable under load.
func selfHost(cfg *config) (string, func(), error) {
	srv := server.NewServer(server.Config{
		Workers:        cfg.serverWorkers,
		Queue:          cfg.serverQueue,
		CPUSlots:       cfg.serverSlots,
		MaxParallelism: 4,
		// A fast sampler tick so -check-health flips within seconds and
		// BENCH summaries always carry a non-zero history tick count.
		HistoryInterval: time.Second,
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", nil, err
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	go func() { _ = httpSrv.Serve(ln) }()
	shutdown := func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = httpSrv.Shutdown(ctx)
		srv.Close()
	}
	return "http://" + ln.Addr().String(), shutdown, nil
}

// startProfiles arms the requested pprof profiles for the measurement
// phase. In self-host mode both profiles cover the serving stack too —
// that is how the harness finds server-side contention hot spots.
func startProfiles(cfg *config) (func(), error) {
	var stops []func()
	if cfg.cpuProfile != "" {
		f, err := os.Create(cfg.cpuProfile)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, err
		}
		stops = append(stops, func() {
			pprof.StopCPUProfile()
			f.Close()
		})
	}
	if cfg.mutexProfile != "" {
		runtime.SetMutexProfileFraction(5)
		path := cfg.mutexProfile
		stops = append(stops, func() {
			f, err := os.Create(path)
			if err != nil {
				fmt.Fprintln(os.Stderr, "ksprload: mutex profile:", err)
				return
			}
			defer f.Close()
			_ = pprof.Lookup("mutex").WriteTo(f, 0)
			runtime.SetMutexProfileFraction(0)
		})
	}
	return func() {
		for _, stop := range stops {
			stop()
		}
	}, nil
}

// ---- summary -------------------------------------------------------------

// latencySummary is one request class's latency digest in nanoseconds.
// Percentiles use the nearest-rank estimator (rank ceil(p*n)), matching
// cmd/ksprbench and the serving histograms.
type latencySummary struct {
	Count  uint64 `json:"count"`
	MeanNs int64  `json:"mean_ns"`
	P50Ns  int64  `json:"p50_ns"`
	P95Ns  int64  `json:"p95_ns"`
	P99Ns  int64  `json:"p99_ns"`
}

// verifySummary is the invariant verifier's tally; Violations must be 0
// for the run (and the CI load gate) to pass.
type verifySummary struct {
	GenerationChecks uint64   `json:"generation_checks"`
	BatchLineChecks  uint64   `json:"batch_line_checks"`
	RecomputeChecks  uint64   `json:"recompute_checks"`
	RecomputeSkipped uint64   `json:"recompute_skipped"`
	Checks429        uint64   `json:"checks_429"`
	Violations       uint64   `json:"violations"`
	Examples         []string `json:"violation_examples,omitempty"`
}

// loadSummary is the schema of BENCH_<name>.json — the load-side sibling
// of cmd/ksprbench's core summary, gated by scripts/benchcmp.
type loadSummary struct {
	Name        string  `json:"name"`
	Timestamp   string  `json:"timestamp"`
	GoVersion   string  `json:"go_version"`
	GOOS        string  `json:"goos"`
	GOARCH      string  `json:"goarch"`
	CPUs        int     `json:"cpus"`
	Datasets    int     `json:"datasets"`
	N           int     `json:"n"`
	D           int     `json:"d"`
	K           int     `json:"k"`
	Seed        int64   `json:"seed"`
	ZipfS       float64 `json:"zipf_s"`
	DurationSec float64 `json:"duration_sec"`
	Concurrency int     `json:"concurrency"`
	RateTarget  float64 `json:"rate_target_rps,omitempty"`

	Mix map[string]int `json:"mix"`

	Requests   uint64  `json:"requests_total"`
	Throughput float64 `json:"throughput_rps"`
	Errors     uint64  `json:"errors_total"`
	ErrorRate  float64 `json:"error_rate"`
	Resp429    uint64  `json:"responses_429_total"`
	Rate429    float64 `json:"rate_429"`
	CacheHits  uint64  `json:"cache_hit_responses"`

	// Latency digests per request class, plus "all" across classes.
	Latency map[string]latencySummary `json:"latency_ns"`

	Verify verifySummary `json:"verify"`

	// HistoryTicks is the server's telemetry-history tick count at the end
	// of the run — the load gate's liveness guard for the sampler (absent
	// when the target runs with history disabled).
	HistoryTicks uint64 `json:"history_ticks,omitempty"`

	// FlightEvidence is the raw /v1/debug:flight response (errors plus the
	// slow tail) embedded when the run fails its verdict; absent otherwise.
	FlightEvidence json.RawMessage `json:"flight_evidence,omitempty"`
}

// tailNs is the nearest-rank p-quantile over latency samples.
func tailNs(sorted []int64, p float64) int64 {
	if len(sorted) == 0 {
		return 0
	}
	rank := int(math.Ceil(p * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}

func digest(lats []int64) latencySummary {
	if len(lats) == 0 {
		return latencySummary{}
	}
	sorted := append([]int64(nil), lats...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	var total int64
	for _, v := range sorted {
		total += v
	}
	return latencySummary{
		Count:  uint64(len(sorted)),
		MeanNs: total / int64(len(sorted)),
		P50Ns:  tailNs(sorted, 0.50),
		P95Ns:  tailNs(sorted, 0.95),
		P99Ns:  tailNs(sorted, 0.99),
	}
}

func writeSummary(path string, sum *loadSummary) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(sum); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func printSummary(sum *loadSummary, out string) {
	fmt.Printf("ksprload: %d requests in %.1fs (%.1f req/s), errors %.4f, 429s %.4f, cache hits %d\n",
		sum.Requests, sum.DurationSec, sum.Throughput, sum.ErrorRate, sum.Rate429, sum.CacheHits)
	classes := make([]string, 0, len(sum.Latency))
	for c := range sum.Latency {
		classes = append(classes, c)
	}
	sort.Strings(classes)
	for _, c := range classes {
		l := sum.Latency[c]
		if l.Count == 0 {
			continue
		}
		fmt.Printf("  %-8s %6d reqs  p50 %8.2fms  p95 %8.2fms  p99 %8.2fms\n",
			c, l.Count, ms(l.P50Ns), ms(l.P95Ns), ms(l.P99Ns))
	}
	v := sum.Verify
	fmt.Printf("  verify   %d generation, %d batch-line, %d recompute (%d skipped), %d x429 checks -> %d violations\n",
		v.GenerationChecks, v.BatchLineChecks, v.RecomputeChecks, v.RecomputeSkipped, v.Checks429, v.Violations)
	fmt.Printf("wrote %s\n", out)
}

func ms(ns int64) float64 { return float64(ns) / float64(time.Millisecond) }

// version fields for the summary header.
func fillHost(sum *loadSummary) {
	sum.Timestamp = time.Now().UTC().Format(time.RFC3339)
	sum.GoVersion = runtime.Version()
	sum.GOOS = runtime.GOOS
	sum.GOARCH = runtime.GOARCH
	sum.CPUs = runtime.GOMAXPROCS(0)
}
