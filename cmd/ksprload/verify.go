// The verifier half of the harness: live invariant checks applied to
// every response the traffic workers receive. All checks are cheap and
// lock-free on the hot path (atomics + a CAS-max generation floor); only
// recording a violation takes a lock, and violations are the exceptional
// case that fails the whole run anyway.
package main

import (
	"encoding/json"
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"
)

// verifier tallies invariant checks and violations across all workers.
//
// The invariant catalogue (see docs/LOAD_TESTING.md):
//
//  1. Read-your-generation: the registry swaps a dataset's snapshot
//     atomically before acknowledging a mutation, so any response for a
//     request issued after the harness observed generation g must report
//     generation >= g. Each dataset keeps a CAS-raised floor; a response
//     below the floor it started from is a consistency violation.
//  2. Batch stream shape: a :batch response must settle every item
//     exactly once — one NDJSON line per index, every index in range.
//  3. Cache honesty: a cache-served result, cold-recomputed with
//     no_cache at the same generation, must be byte-identical
//     (whitespace aside). Sampled at -verify-sample.
//  4. Honest backpressure: a 429 may only occur when the CPU budget can
//     genuinely be exhausted (budget slots > 0 and the request asked for
//     parallelism > 1), must carry a sane Retry-After, and must be a
//     pure JSON error — never preceded by partial stream output.
type verifier struct {
	// budgetSlots is cpu.extra_slots from /metrics at startup: the size
	// of the server's parallelism budget. 0 means AcquireRequired always
	// grants zero extra slots without error, so a 429 is impossible.
	budgetSlots int

	genChecks       atomic.Uint64
	batchLineChecks atomic.Uint64
	recomputeChecks atomic.Uint64
	recomputeSkips  atomic.Uint64
	checks429       atomic.Uint64

	mu         sync.Mutex
	violations uint64
	examples   []string
}

func newVerifier() *verifier { return &verifier{} }

// violate records one invariant violation (examples capped, count not).
func (v *verifier) violate(format string, args ...any) {
	v.mu.Lock()
	defer v.mu.Unlock()
	v.violations++
	if len(v.examples) < 8 {
		v.examples = append(v.examples, fmt.Sprintf(format, args...))
	}
}

// checkGeneration enforces invariant 1 and raises the dataset's floor so
// later requests are held to at least this generation.
func (v *verifier) checkGeneration(d *dsState, floor, got uint64, class string) {
	v.genChecks.Add(1)
	if got < floor {
		v.violate("read-your-generation: %s %s: response generation %d below observed floor %d",
			class, d.name, got, floor)
		return
	}
	d.maxFloor(got)
}

// check429 enforces invariant 4 on one 429 response.
func (v *verifier) check429(class string, askedParallelism int, retryAfter string, body []byte) {
	v.checks429.Add(1)
	if v.budgetSlots <= 0 {
		v.violate("429: %s: budget has %d extra slots — exhaustion is impossible, 429 must not occur",
			class, v.budgetSlots)
	}
	if askedParallelism <= 1 {
		v.violate("429: %s: request asked parallelism %d — the budget is only consulted for parallel asks",
			class, askedParallelism)
	}
	secs, err := strconv.Atoi(retryAfter)
	if err != nil || secs < 1 || secs > 60 {
		v.violate("429: %s: Retry-After %q is not a sane delay in [1, 60] seconds", class, retryAfter)
	}
	// Never partially executes: the body must be a single JSON error
	// object, not NDJSON result lines followed by an error.
	var e struct {
		Error string `json:"error"`
	}
	if err := json.Unmarshal(body, &e); err != nil || e.Error == "" {
		v.violate("429: %s: body is not a pure JSON error (partial execution before backpressure?): %.120s",
			class, body)
	}
}

func (v *verifier) summary() verifySummary {
	v.mu.Lock()
	defer v.mu.Unlock()
	return verifySummary{
		GenerationChecks: v.genChecks.Load(),
		BatchLineChecks:  v.batchLineChecks.Load(),
		RecomputeChecks:  v.recomputeChecks.Load(),
		RecomputeSkipped: v.recomputeSkips.Load(),
		Checks429:        v.checks429.Load(),
		Violations:       v.violations,
		Examples:         append([]string(nil), v.examples...),
	}
}
