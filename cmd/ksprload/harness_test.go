package main

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func TestParseMix(t *testing.T) {
	mix, err := parseMix("kspr=60,batch=15,mutate=15,whatif=10")
	if err != nil {
		t.Fatal(err)
	}
	if mix[classKSPR] != 60 || mix[classBatch] != 15 || mix[classMutate] != 15 || mix[classWhatIf] != 10 {
		t.Fatalf("weights wrong: %v", mix)
	}
	if mix, err := parseMix(" kspr=1 , batch=0 "); err != nil || mix[classKSPR] != 1 {
		t.Fatalf("whitespace/zero-weight form rejected: %v %v", mix, err)
	}
	for _, bad := range []string{"", "kspr", "kspr=x", "kspr=-1", "topk=5", "kspr=0,batch=0"} {
		if _, err := parseMix(bad); err == nil {
			t.Fatalf("parseMix(%q) accepted", bad)
		}
	}
}

func TestConfigValidate(t *testing.T) {
	good := testConfig("validate")
	if err := good.validate(); err != nil {
		t.Fatalf("baseline config rejected: %v", err)
	}
	breakers := []struct {
		name    string
		breakIt func(*config)
	}{
		{"duration", func(c *config) { c.duration = 0 }},
		{"conc", func(c *config) { c.conc = 0 }},
		{"rate", func(c *config) { c.rate = -1 }},
		{"datasets", func(c *config) { c.datasets = 0 }},
		{"n", func(c *config) { c.n = 5 }},
		{"zipf", func(c *config) { c.zipfS = 1.0 }},
		{"verify-sample", func(c *config) { c.verifySample = 1.5 }},
		{"par-prob", func(c *config) { c.parProb = -0.1 }},
		{"batch-range", func(c *config) { c.batchMin = 5; c.batchMax = 2 }},
		{"max-error-rate", func(c *config) { c.maxErrorRate = 2 }},
		{"mix", func(c *config) { c.mixSpec = "nope" }},
	}
	for _, b := range breakers {
		c := testConfig("validate")
		b.breakIt(c)
		if err := c.validate(); err == nil {
			t.Fatalf("%s: invalid config accepted", b.name)
		}
	}
}

func TestTailNsNearestRank(t *testing.T) {
	if got := tailNs(nil, 0.99); got != 0 {
		t.Fatalf("empty tail = %d, want 0", got)
	}
	sorted := []int64{10, 20, 30, 40, 50, 60, 70, 80, 90, 100}
	cases := []struct {
		p    float64
		want int64
	}{{0.50, 50}, {0.95, 100}, {0.99, 100}, {0.10, 10}, {1.0, 100}}
	for _, c := range cases {
		if got := tailNs(sorted, c.p); got != c.want {
			t.Fatalf("tailNs(p=%g) = %d, want %d", c.p, got, c.want)
		}
	}
}

func TestDigest(t *testing.T) {
	if d := digest(nil); d.Count != 0 || d.P99Ns != 0 {
		t.Fatalf("empty digest non-zero: %+v", d)
	}
	// Unsorted on purpose: digest must sort a copy.
	in := []int64{30, 10, 20}
	d := digest(in)
	if d.Count != 3 || d.MeanNs != 20 || d.P50Ns != 20 || d.P99Ns != 30 {
		t.Fatalf("digest wrong: %+v", d)
	}
	if in[0] != 30 {
		t.Fatal("digest mutated its input")
	}
}

func TestVerifierGenerationFloor(t *testing.T) {
	v := newVerifier()
	d := &dsState{name: "ds"}
	d.gen.Store(3)

	v.checkGeneration(d, 3, 5, classKSPR) // advance: fine, raises floor
	v.checkGeneration(d, 5, 5, classKSPR) // equal: fine
	if got := v.summary(); got.Violations != 0 || got.GenerationChecks != 2 {
		t.Fatalf("clean sequence flagged: %+v", got)
	}
	v.checkGeneration(d, 5, 4, classBatch) // regression: violation
	got := v.summary()
	if got.Violations != 1 || len(got.Examples) != 1 {
		t.Fatalf("stale generation not flagged: %+v", got)
	}
	if d.gen.Load() != 5 {
		t.Fatalf("violating response raised the floor to %d", d.gen.Load())
	}
}

func TestVerifierCheck429(t *testing.T) {
	okBody := []byte(`{"error":"server: cpu budget exhausted, retry later"}`)
	cases := []struct {
		name       string
		slots      int
		par        int
		retryAfter string
		body       []byte
		violations uint64
	}{
		{"honest", 1, 2, "1", okBody, 0},
		{"zero-budget", 0, 2, "1", okBody, 1},
		{"serial-ask", 1, 1, "1", okBody, 1},
		{"retry-after-garbage", 1, 2, "soon", okBody, 1},
		{"retry-after-huge", 1, 2, "3600", okBody, 1},
		{"partial-stream", 1, 2, "1", []byte(`{"index":0,"result":{}}` + "\n" + `{"error":"x"}`), 1},
		{"empty-body", 1, 2, "1", nil, 1},
	}
	for _, c := range cases {
		v := newVerifier()
		v.budgetSlots = c.slots
		v.check429(classBatch, c.par, c.retryAfter, c.body)
		if got := v.summary(); got.Violations != c.violations {
			t.Fatalf("%s: %d violations, want %d (%v)", c.name, got.Violations, c.violations, got.Examples)
		}
	}
}

func TestVerifierExampleCap(t *testing.T) {
	v := newVerifier()
	for i := 0; i < 20; i++ {
		v.violate("violation %d", i)
	}
	got := v.summary()
	if got.Violations != 20 {
		t.Fatalf("count capped: %d", got.Violations)
	}
	if len(got.Examples) != 8 {
		t.Fatalf("examples not capped at 8: %d", len(got.Examples))
	}
}

func TestJSONEqual(t *testing.T) {
	a := json.RawMessage(`[{"rank": 3, "volume": 0.5}]`)
	b := json.RawMessage("[ {\"rank\":3,\n\"volume\":0.5} ]")
	if !jsonEqual(a, b) {
		t.Fatal("whitespace-different JSON compared unequal")
	}
	if jsonEqual(a, json.RawMessage(`[{"rank":4,"volume":0.5}]`)) {
		t.Fatal("different JSON compared equal")
	}
	if jsonEqual(json.RawMessage(`{`), json.RawMessage(`{`)) {
		t.Fatal("malformed JSON compared equal")
	}
}

func TestCollectorRecord(t *testing.T) {
	c := newCollector()
	c.record(classKSPR, 10*time.Millisecond, nil)
	c.record(classKSPR, 20*time.Millisecond, errors.New("boom"))
	c.record(classBatch, 5*time.Millisecond, err429)
	if len(c.lat[classKSPR]) != 2 || len(c.lat[classBatch]) != 1 {
		t.Fatalf("latency samples wrong: %v", c.lat)
	}
	if c.errs[classKSPR] != 1 || c.errs[classBatch] != 0 {
		t.Fatalf("errors wrong: %v", c.errs)
	}
	if c.n429[classBatch] != 1 {
		t.Fatalf("429s wrong: %v", c.n429)
	}
	if ex := c.errExamples(); len(ex) != 1 || ex[0] != "boom" {
		t.Fatalf("examples wrong: %v", ex)
	}
}

// testConfig mirrors the flag defaults at a test-friendly scale.
func testConfig(name string) *config {
	return &config{
		duration:      400 * time.Millisecond,
		conc:          4,
		mixSpec:       "kspr=60,batch=15,mutate=15,whatif=10",
		datasets:      2,
		n:             60,
		d:             3,
		k:             4,
		zipfS:         1.2,
		seed:          1,
		verifySample:  0.5,
		parProb:       0.5,
		batchMin:      2,
		batchMax:      4,
		name:          name,
		serverWorkers: 2,
		serverQueue:   64,
		serverSlots:   1,
	}
}

// TestRunEndToEnd drives the entire harness — self-hosted serving stack,
// mixed traffic, the invariant verifier, and the summary file — at a
// sub-second duration. It is the same path `make load` takes, shrunk.
func TestRunEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("spins up a serving stack and drives timed load")
	}
	t.Chdir(t.TempDir())
	cfg := testConfig("loadtest")
	cfg.injectErrors = 2
	cfg.checkFlight = true
	if err := cfg.validate(); err != nil {
		t.Fatal(err)
	}
	if err := run(cfg); err != nil {
		t.Fatalf("run: %v", err)
	}
	raw, err := os.ReadFile("BENCH_loadtest.json")
	if err != nil {
		t.Fatalf("summary file: %v", err)
	}
	var sum loadSummary
	if err := json.Unmarshal(raw, &sum); err != nil {
		t.Fatalf("summary does not parse: %v", err)
	}
	if sum.Requests == 0 || sum.Throughput <= 0 {
		t.Fatalf("no traffic recorded: %+v", sum)
	}
	if sum.Verify.Violations != 0 {
		t.Fatalf("verifier flagged violations: %v", sum.Verify.Examples)
	}
	if sum.Verify.GenerationChecks == 0 {
		t.Fatal("no generation checks ran; the verifier was idle")
	}
	if sum.Latency["all"].Count != sum.Requests {
		t.Fatalf("all-class latency count %d != requests %d", sum.Latency["all"].Count, sum.Requests)
	}
	if _, err := os.Stat(filepath.Join(".", "BENCH_loadtest.json")); err != nil {
		t.Fatal(err)
	}
}

// TestRunUnreachableTarget: pointing the harness at a dead address must
// fail fast during dataset load, before any summary is written.
func TestRunUnreachableTarget(t *testing.T) {
	t.Chdir(t.TempDir())
	cfg := testConfig("dead")
	cfg.addr = "http://127.0.0.1:1"
	if err := cfg.validate(); err != nil {
		t.Fatal(err)
	}
	if err := run(cfg); err == nil {
		t.Fatal("run against a dead address succeeded")
	}
	if _, err := os.Stat("BENCH_dead.json"); !os.IsNotExist(err) {
		t.Fatalf("summary written for a run that never drove traffic: %v", err)
	}
}
