package main

// The harness side of the server's SLO engine (-check-health): after the
// timed phase (and the flight check, when armed), assert the health
// verdict end to end — a clean run reports healthy; a deliberate error
// storm flips the verdict to breaching, emits an slo_burn journal event,
// and that event joins against the flight recorder's error evidence by
// dataset generation. Runs strictly after the verdict and the flight
// phase, so BENCH numbers and embedded evidence never see the storm.

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"
)

// healthCheckWire is the subset of /v1/debug:health the harness reads.
type healthCheckWire struct {
	Healthy    bool    `json:"healthy"`
	Score      float64 `json:"score"`
	Status     string  `json:"status"`
	Generation uint64  `json:"generation"`
	SLOs       []struct {
		Name      string `json:"name"`
		Breaching bool   `json:"breaching"`
	} `json:"slos"`
	History struct {
		IntervalMs float64 `json:"interval_ms"`
		Ticks      uint64  `json:"ticks"`
	} `json:"history"`
}

// journalWire is one /v1/debug:events entry the harness reads.
type journalWire struct {
	Type       string         `json:"type"`
	Generation uint64         `json:"generation"`
	Detail     map[string]any `json:"detail"`
}

// fetchHealth reads /v1/debug:health once.
func (r *runner) fetchHealth() (*healthCheckWire, error) {
	raw, err := r.getDebug("/v1/debug:health")
	if err != nil {
		return nil, err
	}
	var h healthCheckWire
	if err := json.Unmarshal(raw, &h); err != nil {
		return nil, fmt.Errorf("parsing /v1/debug:health: %w", err)
	}
	return &h, nil
}

// getDebug is a small GET helper for the debug read endpoints.
func (r *runner) getDebug(path string) ([]byte, error) {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, r.base+path, nil)
	if err != nil {
		return nil, err
	}
	resp, err := r.client.Do(req)
	if err != nil {
		return nil, fmt.Errorf("fetching %s: %w", path, err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("%s returned %d: %s", path, resp.StatusCode, raw)
	}
	return raw, nil
}

// healthPhase asserts the SLO engine's verdict pipeline end to end.
//
// Step 1: the just-finished clean run must report healthy (the timed
// phase's own error rate already passed the -max-error-rate verdict, so
// an unhealthy verdict here would mean the burn math is wrong).
// Step 2: an error storm — bad-focal queries against a real dataset, so
// each error resolves a dataset generation into its wide event — sized to
// far exceed the availability budget, then a poll across sampler ticks
// until the verdict flips to breaching with the availability SLO guilty.
// Step 3: the slo_burn journal event must exist and join against the
// flight recorder's error evidence by generation.
func (r *runner) healthPhase() error {
	h, err := r.fetchHealth()
	if err != nil {
		return fmt.Errorf("health check: %w", err)
	}
	if !h.Healthy {
		return fmt.Errorf("health check: clean run reports %q (score %.3f), want healthy", h.Status, h.Score)
	}
	tick := time.Duration(h.History.IntervalMs) * time.Millisecond
	if tick <= 0 {
		tick = time.Second
	}
	fmt.Printf("ksprload: health check — clean verdict healthy (score %.3f), driving error storm\n", h.Score)

	// The storm must dominate the burn windows' request deltas: at least
	// 100 errors and ~10% of the timed phase's request count, all 4xx on a
	// real dataset (an out-of-range focal), never 429s (those are excluded
	// from the availability burn by design).
	storm := int(r.stats.totalRequests() / 10)
	if storm < 100 {
		storm = 100
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	ds := r.ds[0].name
	for i := 0; i < storm; i++ {
		resp, _, err := r.post(ctx, "/v1/kspr", map[string]any{"dataset": ds, "focal": -1, "k": 1})
		if err != nil {
			return fmt.Errorf("health check: storm request %d: %w", i, err)
		}
		if resp.StatusCode == http.StatusOK || resp.StatusCode == http.StatusTooManyRequests {
			return fmt.Errorf("health check: storm request %d got status %d, want a plain 4xx", i, resp.StatusCode)
		}
	}

	// The verdict flips once a sampler tick sees the storm on both windows
	// of a burn pair; with the whole run inside the short window the fast
	// pair trips on the next tick. Poll a little past that.
	deadline := time.Now().Add(10*tick + 5*time.Second)
	for {
		if h, err = r.fetchHealth(); err != nil {
			return fmt.Errorf("health check: %w", err)
		}
		if !h.Healthy {
			break
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("health check: verdict still healthy %s after a %d-error storm", 10*tick+5*time.Second, storm)
		}
		time.Sleep(tick / 2)
	}
	guilty := false
	for _, slo := range h.SLOs {
		if slo.Name == "availability" && slo.Breaching {
			guilty = true
		}
	}
	if !guilty {
		return fmt.Errorf("health check: verdict is %q but the availability SLO is not breaching: %+v", h.Status, h.SLOs)
	}

	// The breach must be journaled and joinable against flight evidence.
	raw, err := r.getDebug("/v1/debug:events")
	if err != nil {
		return fmt.Errorf("health check: %w", err)
	}
	var events struct {
		Events []journalWire `json:"events"`
	}
	if err := json.Unmarshal(raw, &events); err != nil {
		return fmt.Errorf("health check: parsing /v1/debug:events: %w", err)
	}
	var burn *journalWire
	for i := range events.Events {
		ev := &events.Events[i]
		if ev.Type == "slo_burn" && ev.Detail["objective"] == "availability" {
			burn = ev
		}
	}
	if burn == nil {
		return fmt.Errorf("health check: no availability slo_burn event in /v1/debug:events (%d events)", len(events.Events))
	}
	if burn.Generation == 0 {
		return fmt.Errorf("health check: slo_burn event carries generation 0, not joinable against flight evidence")
	}
	flightRaw, err := r.fetchFlight("errors_only=true")
	if err != nil {
		return fmt.Errorf("health check: %w", err)
	}
	var env struct {
		Events []struct {
			Dataset    string `json:"dataset"`
			Generation uint64 `json:"generation"`
		} `json:"events"`
	}
	if err := json.Unmarshal(flightRaw, &env); err != nil {
		return fmt.Errorf("health check: parsing /v1/debug:flight: %w", err)
	}
	joined := false
	for _, ev := range env.Events {
		if ev.Dataset == ds && ev.Generation > 0 && ev.Generation <= burn.Generation {
			joined = true
			break
		}
	}
	if !joined {
		return fmt.Errorf("health check: no flight error event on %q joins slo_burn generation %d", ds, burn.Generation)
	}
	fmt.Printf("ksprload: health check ok — storm of %d errors flipped the verdict to %q, slo_burn generation %d joins flight evidence\n",
		storm, h.Status, burn.Generation)
	return nil
}
