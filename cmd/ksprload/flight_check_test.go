package main

import (
	"context"
	"encoding/json"
	"net/http"
	"testing"
	"time"
)

// TestFlightPhaseEndToEnd exercises the post-measurement observability
// smoke against a self-hosted stack: error injection tracked by
// X-Request-Id, the /v1/debug:flight assertion pass, and the evidence
// fetch a failed verdict embeds.
func TestFlightPhaseEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("spins up a serving stack")
	}
	cfg := testConfig("flight")
	cfg.injectErrors = 3
	cfg.checkFlight = true
	if err := cfg.validate(); err != nil {
		t.Fatal(err)
	}
	base, shutdown, err := selfHost(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer shutdown()
	r, err := newRunner(cfg, base)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.loadDatasets(); err != nil {
		t.Fatal(err)
	}
	// One ordinary query so the ring holds normal traffic alongside the
	// dataset-load events.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	resp, body, err := r.post(ctx, "/v1/kspr", map[string]any{"dataset": "load0", "focal": 1, "k": cfg.k})
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("warm-up query: %v status %v: %s", err, resp.StatusCode, body)
	}

	if err := r.flightPhase(); err != nil {
		t.Fatalf("flightPhase: %v", err)
	}

	// The evidence fetch returns only errors — exactly what a failed run
	// embeds in its summary.
	raw := r.flightEvidence()
	if raw == nil {
		t.Fatal("flightEvidence returned nil against a live stack")
	}
	var env flightEnvelope
	if err := json.Unmarshal(raw, &env); err != nil {
		t.Fatalf("evidence does not parse: %v", err)
	}
	if len(env.Events) < cfg.injectErrors {
		t.Fatalf("evidence holds %d events, want >= %d injected errors", len(env.Events), cfg.injectErrors)
	}
	for _, ev := range env.Events {
		if ev.Status < 400 {
			t.Fatalf("evidence includes a non-error event: %+v", ev)
		}
	}
}

// TestFlightFetchUnreachable: both the evidence fetch and the check phase
// must fail cleanly when the target is gone, not hang or panic.
func TestFlightFetchUnreachable(t *testing.T) {
	cfg := testConfig("deadflight")
	cfg.injectErrors = 1
	cfg.checkFlight = true
	if err := cfg.validate(); err != nil {
		t.Fatal(err)
	}
	r, err := newRunner(cfg, "http://127.0.0.1:1")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.fetchFlight("errors_only=true"); err == nil {
		t.Fatal("fetchFlight against a dead address succeeded")
	}
	if raw := r.flightEvidence(); raw != nil {
		t.Fatal("flightEvidence against a dead address returned data")
	}
	if err := r.flightPhase(); err == nil {
		t.Fatal("flightPhase against a dead address succeeded")
	}
}
