package main

import "testing"

func TestBuildLogger(t *testing.T) {
	cases := []struct {
		name      string
		level     string
		format    string
		slowQuery bool
		wantNil   bool
		wantErr   bool
	}{
		{"logging off", "", "text", false, true, false},
		{"slow-query forces a logger", "", "text", true, false, false},
		{"debug text", "debug", "text", false, false, false},
		{"info json", "info", "json", false, false, false},
		{"warn alias", "warning", "text", false, false, false},
		{"error level", "error", "", false, false, false},
		{"case folding", "WARN", "JSON", false, false, false},
		{"bad level", "loud", "text", false, true, true},
		{"bad format", "info", "xml", false, true, true},
		{"bad format validated even when off", "", "xml", false, true, true},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			logger, err := buildLogger(c.level, c.format, c.slowQuery)
			if (err != nil) != c.wantErr {
				t.Fatalf("buildLogger(%q, %q, %v) error = %v, wantErr %v", c.level, c.format, c.slowQuery, err, c.wantErr)
			}
			if (logger == nil) != c.wantNil {
				t.Fatalf("buildLogger(%q, %q, %v) logger nil = %v, want %v", c.level, c.format, c.slowQuery, logger == nil, c.wantNil)
			}
		})
	}
}

func TestDataFlags(t *testing.T) {
	var d dataFlags
	if err := d.Set("a=x.csv"); err != nil {
		t.Fatal(err)
	}
	if err := d.Set("b=y.csv"); err != nil {
		t.Fatal(err)
	}
	if got := d.String(); got != "a=x.csv,b=y.csv" {
		t.Fatalf("String() = %q", got)
	}
}
