// Command ksprd serves kSPR and related rank-aware queries over HTTP/JSON:
// a long-lived daemon with a hot-reloadable, mutable dataset registry, a
// bounded worker pool, a sharded result cache with cross-generation
// migration, and JSON metrics.
//
// Start it with a preloaded dataset and query it:
//
//	ksprgen -dist IND -n 5000 -d 3 -o d.csv
//	ksprd -addr :8080 -data demo=d.csv &
//	curl -s localhost:8080/v1/kspr -d '{"dataset":"demo","focal":17,"k":10}'
//	curl -s localhost:8080/v1/datasets/demo:mutate -d '{"op":"insert","values":[0.9,0.8,0.7]}'
//	curl -s localhost:8080/metrics
//
// Datasets can also be loaded (and hot-reloaded) at runtime via
// POST /v1/datasets, and mutated live via POST /v1/datasets/{name}:mutate.
// With -store-dir every dataset is WAL-backed: mutations are logged before
// they are acknowledged and a restarted daemon recovers the exact
// pre-crash generation (snapshot load + WAL replay). See the root README
// and docs/HTTP_API.md for the full API.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	_ "net/http/pprof" // registered on DefaultServeMux, served only with -pprof-addr
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/obs"
	"repro/internal/server"
)

// dataFlags collects repeated -data name=path pairs.
type dataFlags []string

func (d *dataFlags) String() string { return strings.Join(*d, ",") }
func (d *dataFlags) Set(s string) error {
	*d = append(*d, s)
	return nil
}

func main() {
	var preload dataFlags
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		workers   = flag.Int("workers", 0, "worker pool size (0 = 4)")
		queue     = flag.Int("queue", 0, "worker queue length (0 = 64)")
		cache     = flag.Int("cache", 0, "result cache capacity in entries (0 = 1024)")
		shards    = flag.Int("cache-shards", 0, "result cache shard count (0 = 8)")
		timeout   = flag.Duration("timeout", 30*time.Second, "default per-query timeout")
		maxWait   = flag.Duration("max-timeout", 5*time.Minute, "largest per-query timeout a request may ask for")
		grace     = flag.Duration("grace", 15*time.Second, "shutdown grace period")
		maxPar    = flag.Int("max-parallelism", 0, "largest engine parallelism a request may ask for (0 = all cores)")
		cpuSlots  = flag.Int("cpu-slots", 0, "extra CPU slots shared by parallel queries (0 = cores minus workers, -1 = none)")
		maxBatch  = flag.Int("max-batch", 0, "largest item count a /v1/kspr:batch request may carry (0 = 1024)")
		storeDir  = flag.String("store-dir", "", "directory for WAL-backed dataset stores (empty = in-memory datasets)")
		walSync   = flag.Bool("wal-sync", false, "fsync the WAL on every mutation batch (survives power loss, not just crashes)")
		snapshot  = flag.Int("snapshot-every", 0, "store snapshot cadence in mutation batches (0 = default 256, negative = never)")
		logLevel  = flag.String("log-level", "", "structured request logging at this level: debug, info, warn or error (empty = off)")
		logFormat = flag.String("log-format", "text", "request log format: text or json")
		slowMs    = flag.Int("slow-query-ms", 0, "log requests at least this slow at Warn with their engine phase breakdown (0 = off)")
		pprofAddr = flag.String("pprof-addr", "", "serve net/http/pprof on this address (empty = off; keep it loopback-only)")
		flightCap = flag.Int("flight-capacity", 0, "flight recorder ring capacity in wide events (0 = 256, negative = recorder off)")
		flightN   = flag.Int("flight-sample-every", 0, "capture one in N ordinary requests per endpoint in the flight recorder (0 = 64, negative = errors/slow only)")
		blackBox  = flag.String("blackbox-dir", "", "dump flight ring + event journal + metrics here on panic or SIGQUIT (empty = off)")
		histEvery = flag.Duration("history-interval", 0, "telemetry history sampling interval (0 = 10s, negative = history + SLO engine off)")
		histKeep  = flag.Duration("history-retention", 0, "telemetry history retention (0 = 1h)")
		sloAvail  = flag.Float64("slo-availability", 0, "availability SLO target in (0,1) (0 = 0.999, negative = objective off)")
		sloP99Ms  = flag.Int("slo-p99-ms", 0, "per-class p99 latency SLO bound in ms (0 = 500, negative = latency objectives off)")
		version   = flag.Bool("version", false, "print build identity and exit")
	)
	flag.Var(&preload, "data", "preload dataset as name=path.csv (repeatable; with -store-dir this seeds/replaces the named store)")
	flag.Parse()

	if *version {
		bi := obs.ReadBuildInfo()
		fmt.Printf("ksprd %s (%s, GOAMD64=%s)\n", bi.Version, bi.Go, bi.GOAMD64)
		return
	}
	if *storeDir == "" && (*walSync || *snapshot != 0) {
		fatal(fmt.Errorf("-wal-sync / -snapshot-every need -store-dir"))
	}
	if *slowMs < 0 {
		usageError(fmt.Sprintf("-slow-query-ms must be >= 0, got %d", *slowMs))
	}
	logger, err := buildLogger(*logLevel, *logFormat, *slowMs > 0)
	if err != nil {
		usageError(err.Error())
	}

	if *pprofAddr != "" {
		// pprof gets its own listener (DefaultServeMux carries the
		// net/http/pprof registrations) so profiling endpoints are never
		// reachable through the service address.
		go func() {
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Fprintln(os.Stderr, "ksprd: pprof listener:", err)
			}
		}()
		fmt.Fprintf(os.Stderr, "ksprd: pprof on %s/debug/pprof/\n", *pprofAddr)
	}

	srv := server.NewServer(server.Config{
		Workers:           *workers,
		Queue:             *queue,
		CacheCapacity:     *cache,
		CacheShards:       *shards,
		DefaultTimeout:    *timeout,
		MaxTimeout:        *maxWait,
		MaxParallelism:    *maxPar,
		CPUSlots:          *cpuSlots,
		MaxBatch:          *maxBatch,
		StoreDir:          *storeDir,
		WALSync:           *walSync,
		SnapshotEvery:     *snapshot,
		Logger:            logger,
		SlowQuery:         time.Duration(*slowMs) * time.Millisecond,
		FlightCapacity:    *flightCap,
		FlightSampleEvery: *flightN,
		BlackBoxDir:       *blackBox,
		HistoryInterval:   *histEvery,
		HistoryRetention:  *histKeep,
		SLOAvailability:   *sloAvail,
		SLOP99:            time.Duration(*sloP99Ms) * time.Millisecond,
	})
	if *blackBox != "" {
		// SIGQUIT becomes the black-box trigger: dump the flight ring, the
		// event journal, and a metrics snapshot, then die with the
		// conventional 128+SIGQUIT status. (This replaces the Go runtime's
		// default goroutine dump — use -pprof-addr for stack inspection.)
		quit := make(chan os.Signal, 1)
		signal.Notify(quit, syscall.SIGQUIT)
		go func() {
			<-quit
			path, err := srv.WriteBlackBox("SIGQUIT")
			if err != nil {
				fmt.Fprintln(os.Stderr, "ksprd: black box write failed:", err)
				os.Exit(1)
			}
			fmt.Fprintf(os.Stderr, "ksprd: black box written to %s\n", path)
			os.Exit(128 + int(syscall.SIGQUIT))
		}()
		// Request-path panics are dumped by the server's own recover; this
		// covers panics on the main goroutine (startup, recovery, shutdown).
		defer func() {
			if p := recover(); p != nil {
				if path, err := srv.WriteBlackBox(fmt.Sprintf("panic: %v", p)); err == nil {
					fmt.Fprintf(os.Stderr, "ksprd: black box written to %s\n", path)
				}
				panic(p)
			}
		}()
	}
	if *storeDir != "" {
		snaps, err := srv.RecoverDatasets()
		if err != nil {
			fatal(err)
		}
		for _, snap := range snaps {
			idx := "index cold"
			if snap.DB.IndexWarm() {
				idx = "index warm"
			}
			fmt.Fprintf(os.Stderr, "ksprd: recovered %q: %d records, d=%d (store generation %d, %s)\n",
				snap.Name, snap.DB.Len(), snap.DB.Dim(), snap.StoreGeneration, idx)
		}
	}
	for _, spec := range preload {
		name, path, ok := strings.Cut(spec, "=")
		if !ok || name == "" || path == "" {
			fatal(fmt.Errorf("invalid -data %q, want name=path.csv", spec))
		}
		snap, err := srv.Registry().LoadCSV(name, path)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "ksprd: loaded %q: %d records, d=%d (generation %d)\n",
			name, snap.DB.Len(), snap.DB.Dim(), snap.Generation)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	fmt.Fprintf(os.Stderr, "ksprd: listening on %s\n", *addr)
	err = srv.ListenAndServe(ctx, *addr, *grace)
	if err != nil && !errors.Is(err, http.ErrServerClosed) {
		fatal(err)
	}
	fmt.Fprintln(os.Stderr, "ksprd: shut down cleanly")
}

// buildLogger assembles the request logger from the -log-level and
// -log-format flags. An empty level normally disables logging, but the
// slow-query log needs a logger, so it forces one at Warn.
func buildLogger(level, format string, slowQuery bool) (*slog.Logger, error) {
	// Validate both flags before the logging-off early return, so a typo'd
	// -log-format is a usage error even when no logger is built.
	var lvl slog.Level
	switch strings.ToLower(level) {
	case "":
		lvl = slog.LevelWarn // the slow-query log's level when -log-level is unset
	case "debug":
		lvl = slog.LevelDebug
	case "info":
		lvl = slog.LevelInfo
	case "warn", "warning":
		lvl = slog.LevelWarn
	case "error":
		lvl = slog.LevelError
	default:
		return nil, fmt.Errorf("invalid -log-level %q, want debug, info, warn or error", level)
	}
	var build func(opts *slog.HandlerOptions) *slog.Logger
	switch strings.ToLower(format) {
	case "", "text":
		build = func(opts *slog.HandlerOptions) *slog.Logger {
			return slog.New(slog.NewTextHandler(os.Stderr, opts))
		}
	case "json":
		build = func(opts *slog.HandlerOptions) *slog.Logger {
			return slog.New(slog.NewJSONHandler(os.Stderr, opts))
		}
	default:
		return nil, fmt.Errorf("invalid -log-format %q, want text or json", format)
	}
	if level == "" && !slowQuery {
		return nil, nil
	}
	return build(&slog.HandlerOptions{Level: lvl}), nil
}

// usageError reports a bad flag combination the flag package itself cannot
// catch, with the conventional exit status 2.
func usageError(msg string) {
	fmt.Fprintln(os.Stderr, "ksprd:", msg)
	flag.Usage()
	os.Exit(2)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ksprd:", err)
	os.Exit(1)
}
