// Command ksprd serves kSPR and related rank-aware queries over HTTP/JSON:
// a long-lived daemon with a hot-reloadable, mutable dataset registry, a
// bounded worker pool, a sharded result cache with cross-generation
// migration, and JSON metrics.
//
// Start it with a preloaded dataset and query it:
//
//	ksprgen -dist IND -n 5000 -d 3 -o d.csv
//	ksprd -addr :8080 -data demo=d.csv &
//	curl -s localhost:8080/v1/kspr -d '{"dataset":"demo","focal":17,"k":10}'
//	curl -s localhost:8080/v1/datasets/demo:mutate -d '{"op":"insert","values":[0.9,0.8,0.7]}'
//	curl -s localhost:8080/metrics
//
// Datasets can also be loaded (and hot-reloaded) at runtime via
// POST /v1/datasets, and mutated live via POST /v1/datasets/{name}:mutate.
// With -store-dir every dataset is WAL-backed: mutations are logged before
// they are acknowledged and a restarted daemon recovers the exact
// pre-crash generation (snapshot load + WAL replay). See the root README
// and docs/HTTP_API.md for the full API.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/server"
)

// dataFlags collects repeated -data name=path pairs.
type dataFlags []string

func (d *dataFlags) String() string { return strings.Join(*d, ",") }
func (d *dataFlags) Set(s string) error {
	*d = append(*d, s)
	return nil
}

func main() {
	var preload dataFlags
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		workers  = flag.Int("workers", 0, "worker pool size (0 = 4)")
		queue    = flag.Int("queue", 0, "worker queue length (0 = 64)")
		cache    = flag.Int("cache", 0, "result cache capacity in entries (0 = 1024)")
		shards   = flag.Int("cache-shards", 0, "result cache shard count (0 = 8)")
		timeout  = flag.Duration("timeout", 30*time.Second, "default per-query timeout")
		maxWait  = flag.Duration("max-timeout", 5*time.Minute, "largest per-query timeout a request may ask for")
		grace    = flag.Duration("grace", 15*time.Second, "shutdown grace period")
		maxPar   = flag.Int("max-parallelism", 0, "largest engine parallelism a request may ask for (0 = all cores)")
		cpuSlots = flag.Int("cpu-slots", 0, "extra CPU slots shared by parallel queries (0 = cores minus workers, -1 = none)")
		maxBatch = flag.Int("max-batch", 0, "largest item count a /v1/kspr:batch request may carry (0 = 1024)")
		storeDir = flag.String("store-dir", "", "directory for WAL-backed dataset stores (empty = in-memory datasets)")
		walSync  = flag.Bool("wal-sync", false, "fsync the WAL on every mutation batch (survives power loss, not just crashes)")
		snapshot = flag.Int("snapshot-every", 0, "store snapshot cadence in mutation batches (0 = default 256, negative = never)")
	)
	flag.Var(&preload, "data", "preload dataset as name=path.csv (repeatable; with -store-dir this seeds/replaces the named store)")
	flag.Parse()

	if *storeDir == "" && (*walSync || *snapshot != 0) {
		fatal(fmt.Errorf("-wal-sync / -snapshot-every need -store-dir"))
	}

	srv := server.NewServer(server.Config{
		Workers:        *workers,
		Queue:          *queue,
		CacheCapacity:  *cache,
		CacheShards:    *shards,
		DefaultTimeout: *timeout,
		MaxTimeout:     *maxWait,
		MaxParallelism: *maxPar,
		CPUSlots:       *cpuSlots,
		MaxBatch:       *maxBatch,
		StoreDir:       *storeDir,
		WALSync:        *walSync,
		SnapshotEvery:  *snapshot,
	})
	if *storeDir != "" {
		snaps, err := srv.RecoverDatasets()
		if err != nil {
			fatal(err)
		}
		for _, snap := range snaps {
			fmt.Fprintf(os.Stderr, "ksprd: recovered %q: %d records, d=%d (store generation %d)\n",
				snap.Name, snap.DB.Len(), snap.DB.Dim(), snap.StoreGeneration)
		}
	}
	for _, spec := range preload {
		name, path, ok := strings.Cut(spec, "=")
		if !ok || name == "" || path == "" {
			fatal(fmt.Errorf("invalid -data %q, want name=path.csv", spec))
		}
		snap, err := srv.Registry().LoadCSV(name, path)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "ksprd: loaded %q: %d records, d=%d (generation %d)\n",
			name, snap.DB.Len(), snap.DB.Dim(), snap.Generation)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	fmt.Fprintf(os.Stderr, "ksprd: listening on %s\n", *addr)
	err := srv.ListenAndServe(ctx, *addr, *grace)
	if err != nil && !errors.Is(err, http.ErrServerClosed) {
		fatal(err)
	}
	fmt.Fprintln(os.Stderr, "ksprd: shut down cleanly")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ksprd:", err)
	os.Exit(1)
}
