package kspr

// The live-dataset surface of DB: durable WAL-backed stores (OpenStore),
// the mutation API (Apply, with Insert/Update/Delete constructors),
// change notification (Watch), immutable generation handles (Freeze), and
// incrementally maintained queries (MaintainKSPR). See
// docs/ARCHITECTURE.md, "Durability & consistency model".

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/rtree"
	"repro/internal/store"
)

// Mutation is one option-level dataset change; build them with Insert,
// Update and Delete. Option ids are stable: they survive any number of
// mutations and never get reused, unlike dense record indexes, which
// shift when earlier records are deleted.
type Mutation = store.Mutation

// Op identifies a mutation kind (see the Insert/Update/Delete
// constructors, which are the usual way to build mutations).
type Op = store.Op

// Mutation kinds, re-exported for callers that inspect mutations.
const (
	OpInsert = store.OpInsert
	OpUpdate = store.OpUpdate
	OpDelete = store.OpDelete
)

// ErrStoreIO marks a mutation batch that failed on the storage side (WAL
// append/fsync). The batch was NOT applied and is safe to retry; serving
// layers should report it as a server error, not a bad request.
var ErrStoreIO = store.ErrIO

// Insert returns a mutation adding a new option; the store assigns its id
// (reported in ApplyResult.IDs).
func Insert(values ...float64) Mutation {
	return Mutation{Op: store.OpInsert, Values: values}
}

// Update returns a mutation replacing the option id's attribute vector.
func Update(id int64, values ...float64) Mutation {
	return Mutation{Op: store.OpUpdate, ID: id, Values: values}
}

// Delete returns a mutation removing the option id.
func Delete(id int64) Mutation {
	return Mutation{Op: store.OpDelete, ID: id}
}

// Delta is one applied record-level change as watchers and the
// incremental-maintenance classifier see it: the attribute vector before
// the change (nil for inserts) and after it (nil for deletes).
type Delta struct {
	Old, New []float64
}

// ApplyResult reports one applied mutation batch.
type ApplyResult struct {
	// Generation is the dataset generation the batch produced.
	Generation uint64
	// IDs holds the stable option id each mutation addressed, aligned with
	// the input batch (freshly assigned for inserts).
	IDs []int64
	// Deltas are the applied record-level changes, aligned with the input.
	Deltas []Delta
}

// ApplyEvent notifies a watcher of one applied batch.
type ApplyEvent struct {
	// Generation is the new dataset generation; Deltas the record-level
	// changes that produced it.
	Generation uint64
	Deltas     []Delta
}

// StoreOption configures OpenStore.
type StoreOption func(*storeConfig)

type storeConfig struct {
	sync     bool
	snapshot int
	fanout   int
	onEvent  func(StoreEvent)
}

// StoreEvent is one durable-store lifecycle event (WAL recovery, snapshot
// write, index warm/cold decision) delivered to a WithStoreEvents hook.
type StoreEvent = store.Event

// Store event kinds delivered to WithStoreEvents hooks, extending the
// underlying store's wal_recovery / snapshot_write with the candidate-index
// open decision.
const (
	// StoreEventIndexWarm fires when OpenStore reassembles the R-tree from
	// a persisted candidate index (restart skipped the O(n log n) rebuild).
	StoreEventIndexWarm = "index_warm"
	// StoreEventIndexCold fires when OpenStore had to rebuild the index
	// from scratch (missing, stale, or invalid index file).
	StoreEventIndexCold = "index_cold"
)

// WithStoreEvents installs a lifecycle-event hook on the opened store:
// WAL recovery, snapshot writes, and the index warm/cold decision. The
// hook may run with internal store locks held — keep it fast and do not
// call back into the DB.
func WithStoreEvents(fn func(StoreEvent)) StoreOption {
	return func(c *storeConfig) { c.onEvent = fn }
}

// WithWALSync fsyncs the write-ahead log after every applied batch, making
// acknowledged mutations survive power loss (not just process crashes) at
// the cost of one fsync per Apply.
func WithWALSync() StoreOption {
	return func(c *storeConfig) { c.sync = true }
}

// WithSnapshotEvery sets how many applied batches elapse between automatic
// store snapshots (default 256; negative disables them). Snapshots bound
// WAL replay time at recovery.
func WithSnapshotEvery(n int) StoreOption {
	return func(c *storeConfig) { c.snapshot = n }
}

// WithStoreFanout sets the R-tree fanout used when indexing the store's
// generations (default 64).
func WithStoreFanout(f int) StoreOption {
	return func(c *storeConfig) { c.fanout = f }
}

// OpenStore opens (or creates) a WAL-backed dataset store at dir and
// returns a live DB bound to it: crash recovery replays the WAL on top of
// the latest snapshot, so the returned DB is at exactly the last applied
// generation. The DB may be empty (Len 0) until the first insert batch.
func OpenStore(dir string, opts ...StoreOption) (*DB, error) {
	cfg := storeConfig{fanout: rtree.DefaultFanout}
	for _, o := range opts {
		o(&cfg)
	}
	st, err := store.Open(dir, store.Options{Sync: cfg.sync, SnapshotEvery: cfg.snapshot, OnEvent: cfg.onEvent})
	if err != nil {
		return nil, fmt.Errorf("kspr: %w", err)
	}
	db := &DB{store: st, fanout: cfg.fanout}
	// A persisted candidate index lets the warm path reassemble the
	// R-tree in O(n) and skip the skyband traversal; any load or
	// validation failure just means a cold rebuild.
	idx, _ := store.LoadIndex(dir)
	state, err := db.stateFromVersionWarm(st.View(), idx)
	if err != nil {
		st.Close()
		return nil, err
	}
	if !state.warmIndex && state.tree != nil {
		// Cold open: persist a fresh index so the next restart is warm.
		// The state is not yet published, so attaching the skyband table
		// to its tree is race-free. Persistence is advisory — an
		// unwritable index file must not fail the open.
		_ = store.WriteIndex(dir, db.attachIndex(state))
	}
	if cfg.onEvent != nil && state.tree != nil {
		kind := StoreEventIndexCold
		if state.warmIndex {
			kind = StoreEventIndexWarm
		}
		cfg.onEvent(StoreEvent{Kind: kind, Gen: state.gen, Records: len(state.ids)})
	}
	db.st.Store(state)
	return db, nil
}

// persistBandK is the skyband depth persisted in the candidate index.
// Any skyband query with k < persistBandK (the strict inequality leaves
// headroom for the exclude-focal discount) is then served off the table.
const persistBandK = 64

// stateFromVersion indexes one store generation (always cold).
func (db *DB) stateFromVersion(v *store.Version) (*dbState, error) {
	return db.stateFromVersionWarm(v, nil)
}

// stateFromVersionWarm indexes one store generation, reassembling the
// index from a persisted layout when idx matches the generation exactly
// (generation number, dimensionality, record count, fanout). A stale or
// invalid layout silently falls back to the cold build — the index file
// can never change results, only skip work.
func (db *DB) stateFromVersionWarm(v *store.Version, idx *store.IndexSnapshot) (*dbState, error) {
	state := &dbState{gen: v.Gen, ids: v.IDs(), dim: v.Dim()}
	if v.Len() == 0 {
		return state, nil
	}
	if v.Dim() < 2 {
		return nil, fmt.Errorf("kspr: store records must have at least 2 attributes, got %d", v.Dim())
	}
	recs := make([]geom.Vector, v.Len())
	for i, row := range v.Rows() {
		recs[i] = geom.Vector(row)
	}
	if idx != nil && idx.Gen == v.Gen && idx.Dim == v.Dim() &&
		idx.Fanout == db.fanout && len(idx.Order) == v.Len() {
		if tree, err := rtree.BuildFromOrder(recs, idx.Order, idx.GroupEnds, rtree.WithFanout(db.fanout)); err == nil {
			if idx.BandK > 0 {
				tree.Band = &rtree.BandTable{K: idx.BandK, IDs: idx.BandIDs, Cnt: idx.BandCnt}
			}
			state.tree = tree
			state.warmIndex = true
			return state, nil
		}
	}
	tree, err := rtree.Build(recs, rtree.WithFanout(db.fanout))
	if err != nil {
		return nil, fmt.Errorf("kspr: indexing store generation %d: %w", v.Gen, err)
	}
	state.tree = tree
	return state, nil
}

// attachIndex derives the persistable candidate index from state's tree —
// STR leaf layout plus a depth-persistBandK skyband table — and attaches
// the table to the tree. Callers must hold the only reference to the
// state (not yet published) or accept the write themselves; the returned
// snapshot is ready for store.WriteIndex.
func (db *DB) attachIndex(state *dbState) *store.IndexSnapshot {
	idx := indexSnapshotFor(state.tree, state.gen, db.fanout, state.dim)
	state.tree.Band = &rtree.BandTable{K: idx.BandK, IDs: idx.BandIDs, Cnt: idx.BandCnt}
	return idx
}

// indexSnapshotFor computes the persisted-index contents for a built
// tree without mutating it.
func indexSnapshotFor(tree *rtree.Tree, gen uint64, fanout, dim int) *store.IndexSnapshot {
	ids, cnts := tree.KSkybandCounts(persistBandK, nil)
	ids32 := make([]int32, len(ids))
	for i, id := range ids {
		ids32[i] = int32(id)
	}
	order, groupEnds := tree.LeafOrder()
	return &store.IndexSnapshot{
		Gen:       gen,
		Fanout:    fanout,
		Dim:       dim,
		Order:     order,
		GroupEnds: groupEnds,
		BandK:     persistBandK,
		BandIDs:   ids32,
		BandCnt:   cnts,
	}
}

// Generation returns the dataset generation this handle reads from:
// monotonically increasing for live DBs, pinned for frozen ones. Open
// starts at 1; an empty store is generation 0.
func (db *DB) Generation() uint64 { return db.cur().gen }

// StableID maps a dense record index of this handle's generation to the
// record's stable option id.
func (db *DB) StableID(dense int) (int64, bool) {
	st := db.cur()
	if dense < 0 || dense >= len(st.ids) {
		return 0, false
	}
	return st.ids[dense], true
}

// DenseIndex maps a stable option id to its dense record index in this
// handle's generation (false when the option does not exist there).
func (db *DB) DenseIndex(id int64) (int, bool) {
	return denseOf(db.cur().ids, id)
}

func denseOf(ids []int64, id int64) (int, bool) {
	i := sort.Search(len(ids), func(i int) bool { return ids[i] >= id })
	if i < len(ids) && ids[i] == id {
		return i, true
	}
	return 0, false
}

// Freeze returns an immutable DB pinned to the current generation. The
// frozen handle shares the index (cheap) and keeps answering queries for
// its generation no matter how far the live DB advances — the MVCC handle
// serving paths hold while a reload or mutation storm runs underneath.
// Apply on a frozen handle fails; Watch on one never fires.
func (db *DB) Freeze() *DB {
	return &DB{frozen: db.cur(), fanout: db.fanout}
}

// Apply executes one atomic mutation batch against the live dataset: all
// mutations validate and apply together, producing exactly one new
// generation, or none do. In-flight queries keep the snapshot they
// started with; queries issued after Apply returns see the new
// generation. For store-backed DBs the batch is WAL-appended before it
// becomes visible, so an acknowledged Apply survives a crash. Watchers
// run synchronously (in Apply's goroutine) after the swap, in
// registration order. Apply is safe for concurrent use; batches
// serialize.
func (db *DB) Apply(muts ...Mutation) (*ApplyResult, error) {
	if db.frozen != nil {
		return nil, fmt.Errorf("kspr: Apply on a frozen DB handle")
	}
	if len(muts) == 0 {
		return &ApplyResult{Generation: db.Generation()}, nil
	}
	for i, m := range muts {
		if m.Op == store.OpInsert || m.Op == store.OpUpdate {
			if len(m.Values) < 2 {
				return nil, fmt.Errorf("kspr: mutation %d: records need at least 2 attributes, got %d", i, len(m.Values))
			}
		}
	}
	db.mu.Lock()
	defer db.mu.Unlock()

	var state *dbState
	var applied []store.Applied
	if db.store != nil {
		ver, a, err := db.store.Apply(muts)
		if err != nil {
			return nil, fmt.Errorf("kspr: %w", err)
		}
		applied = a
		state, err = db.stateFromVersion(ver)
		if err != nil {
			return nil, err
		}
		if db.store.SinceSnapshot() == 0 && state.tree != nil {
			// This batch triggered an automatic store snapshot; persist
			// the candidate index alongside it (and give the new state
			// the skyband table, pre-publication). Advisory like the
			// snapshot itself: a failed write never fails the Apply.
			_ = store.WriteIndex(db.store.Dir(), db.attachIndex(state))
		}
	} else {
		cur := db.st.Load()
		recs := make([]store.Record, len(cur.ids))
		for i, id := range cur.ids {
			recs[i] = store.Record{ID: id, Values: cur.tree.Records[i]}
		}
		newRecs, nextID, dim, a, err := store.ApplyRecords(recs, cur.nextID, cur.dim, muts)
		if err != nil {
			return nil, fmt.Errorf("kspr: %w", err)
		}
		applied = a
		state = &dbState{gen: cur.gen + 1, nextID: nextID, dim: dim}
		state.ids = make([]int64, len(newRecs))
		vecs := make([]geom.Vector, len(newRecs))
		for i, rec := range newRecs {
			state.ids[i] = rec.ID
			vecs[i] = geom.Vector(rec.Values)
		}
		if len(vecs) > 0 {
			tree, err := rtree.Build(vecs, rtree.WithFanout(db.fanout))
			if err != nil {
				return nil, fmt.Errorf("kspr: re-indexing after mutation: %w", err)
			}
			state.tree = tree
		}
	}

	res := &ApplyResult{Generation: state.gen}
	res.IDs = make([]int64, len(applied))
	res.Deltas = make([]Delta, len(applied))
	for i, a := range applied {
		res.IDs[i] = a.ID
		res.Deltas[i] = Delta{Old: a.Old}
		if a.Op != store.OpDelete {
			res.Deltas[i].New = a.Values
		}
	}
	db.st.Store(state)
	if len(db.watchers) > 0 {
		ev := ApplyEvent{Generation: res.Generation, Deltas: res.Deltas}
		for _, w := range db.watcherList() {
			w(ev)
		}
	}
	return res, nil
}

// watcherList snapshots the watcher callbacks in registration order.
func (db *DB) watcherList() []func(ApplyEvent) {
	keys := make([]int64, 0, len(db.watchers))
	for k := range db.watchers {
		keys = append(keys, k)
	}
	for i := 1; i < len(keys); i++ { // insertion sort: registries are tiny
		for j := i; j > 0 && keys[j-1] > keys[j]; j-- {
			keys[j-1], keys[j] = keys[j], keys[j-1]
		}
	}
	out := make([]func(ApplyEvent), len(keys))
	for i, k := range keys {
		out[i] = db.watchers[k]
	}
	return out
}

// Watch registers fn to run after every applied mutation batch, in
// Apply's goroutine and in registration order; keep callbacks fast. The
// returned cancel function unregisters it. On a frozen handle Watch is a
// no-op (frozen handles never mutate).
func (db *DB) Watch(fn func(ApplyEvent)) (cancel func()) {
	if db.frozen != nil {
		return func() {}
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.watchLocked(fn)
}

// watchLocked registers a watcher; callers hold db.mu.
func (db *DB) watchLocked(fn func(ApplyEvent)) (cancel func()) {
	if db.watchers == nil {
		db.watchers = make(map[int64]func(ApplyEvent))
	}
	id := db.nextW
	db.nextW++
	db.watchers[id] = fn
	return func() {
		db.mu.Lock()
		delete(db.watchers, id)
		db.mu.Unlock()
	}
}

// SnapshotStore forces a store snapshot now (WAL truncation included)
// and persists the candidate index alongside it, so a restart from this
// snapshot skips the O(n log n) index rebuild; a no-op error for
// in-memory DBs.
func (db *DB) SnapshotStore() error {
	if db.store == nil {
		return fmt.Errorf("kspr: DB has no backing store")
	}
	if err := db.store.Snapshot(); err != nil {
		return err
	}
	st := db.cur()
	if st.tree == nil {
		return nil
	}
	// The state is already published, so only read the tree here — the
	// index file is written from a freshly computed layout and table
	// without attaching anything to the live tree.
	return store.WriteIndex(db.store.Dir(), indexSnapshotFor(st.tree, st.gen, db.fanout, st.dim))
}

// Close releases the backing store (if any). Outstanding frozen handles
// and in-flight queries stay valid; only mutations stop working.
func (db *DB) Close() error {
	if db.store == nil {
		return nil
	}
	return db.store.Close()
}

// LiveQueryStats reports a maintained query's decision tallies.
type LiveQueryStats struct {
	// Generation is the dataset generation the current result is valid
	// for; Kept counts generations absorbed without recomputation,
	// Recomputed the cold reruns (the initial run excluded).
	Generation uint64
	Kept       uint64
	Recomputed uint64
}

// LiveQuery is an incrementally maintained kSPR result: it tracks a focal
// option (by stable id) across dataset generations, classifying every
// mutation batch against the focal's cached k-skyband state and
// recomputing only when a mutation can actually change the answer. The
// maintained result is always byte-identical to a cold query on the
// current generation. Create with DB.MaintainKSPR; Close to detach.
type LiveQuery struct {
	mu     sync.Mutex
	db     *DB
	stable int64
	opts   core.Options
	m      *core.Maintainer
	gen    uint64
	err    error
	cancel func()
}

func (q *LiveQuery) lock()   { q.mu.Lock() }
func (q *LiveQuery) unlock() { q.mu.Unlock() }

// MaintainKSPR answers the query cold and keeps the result current across
// future Apply calls. focalID is a dense record index of the current
// generation; the query then tracks that option's stable id, following
// reprices (recompute with the new vector) and erroring out if the option
// is deleted. The per-query options mirror KSPR's.
func (db *DB) MaintainKSPR(focalID, k int, opts ...QueryOption) (*LiveQuery, error) {
	if db.frozen != nil {
		return nil, fmt.Errorf("kspr: MaintainKSPR on a frozen DB handle")
	}
	q := &LiveQuery{db: db, opts: buildOptions(k, opts)}
	// The cold run happens outside every lock; registration then commits
	// only if no mutation landed meanwhile (checked under db.mu, so the
	// registered watcher can never miss a generation), else it retries on
	// the fresh state. Locks are never held across each other here, so
	// Apply's db.mu -> q.mu order stays the only order in the program.
	for {
		st := db.cur()
		if st.tree == nil || focalID < 0 || focalID >= st.tree.Len() {
			return nil, fmt.Errorf("kspr: focal id %d out of range [0, %d)", focalID, db.Len())
		}
		m, err := core.NewMaintainer(st.tree, st.tree.Records[focalID], focalID, q.opts)
		if err != nil {
			return nil, err
		}
		db.mu.Lock()
		if db.st.Load() == st {
			q.stable = st.ids[focalID]
			q.m = m
			q.gen = st.gen
			q.cancel = db.watchLocked(q.onApply)
			db.mu.Unlock()
			return q, nil
		}
		db.mu.Unlock() // a mutation slipped in: redo the cold run on it
	}
}

// onApply advances the maintained result to the just-installed
// generation. It runs in Apply's goroutine, after the state swap.
func (q *LiveQuery) onApply(ev ApplyEvent) {
	q.lock()
	defer q.unlock()
	if q.err != nil || ev.Generation <= q.gen {
		return
	}
	st := q.db.cur()
	dense, ok := denseOf(st.ids, q.stable)
	if !ok {
		q.err = fmt.Errorf("kspr: maintained focal option %d was deleted at generation %d", q.stable, ev.Generation)
		return
	}
	deltas := make([]core.Delta, len(ev.Deltas))
	for i, d := range ev.Deltas {
		deltas[i] = core.Delta{Old: geom.Vector(d.Old), New: geom.Vector(d.New)}
	}
	if _, _, err := q.m.Apply(st.tree, dense, deltas); err != nil {
		q.err = err
		return
	}
	q.gen = ev.Generation
}

// Result returns the maintained result and the generation it is valid
// for. After the focal option is deleted (or a recompute failed) it
// returns the error instead.
func (q *LiveQuery) Result() (*Result, uint64, error) {
	q.lock()
	defer q.unlock()
	if q.err != nil {
		return nil, q.gen, q.err
	}
	return q.m.Result(), q.gen, nil
}

// Stats returns the maintained query's keep/recompute tallies.
func (q *LiveQuery) Stats() LiveQueryStats {
	q.lock()
	defer q.unlock()
	st := LiveQueryStats{Generation: q.gen}
	if q.m != nil {
		ms := q.m.Stats()
		st.Kept, st.Recomputed = ms.Kept, ms.Recomputed
	}
	return st
}

// Close detaches the maintained query from the DB's mutation stream.
func (q *LiveQuery) Close() {
	if q.cancel != nil {
		q.cancel()
	}
}

// MutationImpact classifies one applied mutation batch against many focal
// queries cheaply: the per-delta dominator sets are computed once against
// the old and new generations' indexes, and each focal's Unaffected check
// is then a handful of comparisons. The serving layer uses it to migrate
// cached results across generations instead of invalidating them. old and
// new must be handles on the generations immediately before and after the
// batch.
type MutationImpact struct {
	deltas []Delta
	facts  []deltaFacts
}

type deltaFacts struct {
	old, new     geom.Vector
	oldDoms      []int // dominator dense ids in the old generation
	newDoms      []int // dominator dense ids in the new generation
	valueNoop    bool
	oldOK, newOK bool
}

// NewMutationImpact analyzes the batch's dominance structure against both
// generations.
func NewMutationImpact(oldDB, newDB *DB, deltas []Delta) *MutationImpact {
	mi := &MutationImpact{deltas: deltas, facts: make([]deltaFacts, len(deltas))}
	oldTree, newTree := oldDB.cur().tree, newDB.cur().tree
	for i, d := range deltas {
		f := &mi.facts[i]
		f.old, f.new = geom.Vector(d.Old), geom.Vector(d.New)
		if f.old != nil && f.new != nil && core.ExactlyEqual(f.old, f.new) {
			f.valueNoop = true
			continue
		}
		if f.old != nil && oldTree != nil {
			f.oldDoms, f.oldOK = oldTree.Dominators(f.old, nil), true
		}
		if f.new != nil && newTree != nil {
			f.newDoms, f.newOK = newTree.Dominators(f.new, nil), true
		}
	}
	return mi
}

// Unaffected reports whether the batch provably cannot change the kSPR
// result of the given focal query: every mutated vector is either weakly
// dominated by the focal (any algorithm) or strictly dominated by at
// least k records other than the focal (dominance-ordered algorithms).
// focal is the focal vector; oldFocalID/newFocalID its dense indexes in
// the two generations (-1 for hypothetical focals). Callers must
// separately ensure the focal option itself was not mutated — Unaffected
// classifies by value, not identity.
func (mi *MutationImpact) Unaffected(focal []float64, oldFocalID, newFocalID, k int, algo Algorithm) bool {
	fv := geom.Vector(focal)
	check := func(v geom.Vector, doms []int, ok bool, focalID int) bool {
		if len(v) != len(fv) {
			return false
		}
		if core.WeakDominates(fv, v) {
			return true
		}
		if algo == core.CTA || !ok {
			return false
		}
		n := len(doms)
		if focalID >= 0 {
			// doms is sorted (rtree.Dominators); discount the focal itself.
			if i := sort.SearchInts(doms, focalID); i < len(doms) && doms[i] == focalID {
				n--
			}
		}
		return n >= k
	}
	for _, f := range mi.facts {
		if f.valueNoop {
			continue
		}
		if f.old != nil && !check(f.old, f.oldDoms, f.oldOK, oldFocalID) {
			return false
		}
		if f.new != nil && !check(f.new, f.newDoms, f.newOK, newFocalID) {
			return false
		}
	}
	return true
}
