package kspr_test

// This file maps every table and figure of the paper's evaluation to a
// testing.B benchmark, so `go test -bench=.` regenerates the whole suite at
// reduced scale and `cmd/ksprbench` produces the full tables. Benchmarks
// print their rows once (on the first iteration) and otherwise measure the
// end-to-end experiment runtime.
//
// Scale: BENCH_SCALE-like tuning is deliberately compile-time constant so
// results are comparable run to run; edit benchScale or use ksprbench
// -scale for bigger runs.

import (
	"io"
	"math/rand"
	"os"
	"testing"

	kspr "repro"
	"repro/internal/experiments"
)

// benchScale keeps `go test -bench=.` tractable on a laptop; ksprbench
// defaults to 1.0 (20K records) and the paper used up to 10M.
const benchScale = 0.05

// benchConfig returns the experiment configuration for benchmarks. Rows are
// printed only when -v is given; timing is what the benchmark reports.
func benchConfig(verbose bool) experiments.Config {
	out := io.Discard
	if verbose {
		out = os.Stdout
	}
	return experiments.Config{Scale: benchScale, Queries: 1, Seed: 1, Out: out}
}

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	e, ok := experiments.Lookup(id)
	if !ok {
		b.Fatalf("experiment %s not registered", id)
	}
	cfg := benchConfig(testing.Verbose())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := e.Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// One benchmark per table/figure of the evaluation section.

func BenchmarkTable1_RealDatasetInventory(b *testing.B)     { benchExperiment(b, "table1") }
func BenchmarkTable2_ParameterGrid(b *testing.B)            { benchExperiment(b, "table2") }
func BenchmarkFig9_NBACaseStudy(b *testing.B)               { benchExperiment(b, "fig9") }
func BenchmarkFig10a_LPCTAvsRTOPK(b *testing.B)             { benchExperiment(b, "fig10a") }
func BenchmarkFig10b_AllAlgorithmsVsIMaxRank(b *testing.B)  { benchExperiment(b, "fig10b") }
func BenchmarkFig11_ProcessedRecordsAndNodes(b *testing.B)  { benchExperiment(b, "fig11") }
func BenchmarkFig12_EffectOfCardinality(b *testing.B)       { benchExperiment(b, "fig12") }
func BenchmarkFig13_EffectOfDimensionality(b *testing.B)    { benchExperiment(b, "fig13") }
func BenchmarkFig14_EffectOfDistribution(b *testing.B)      { benchExperiment(b, "fig14") }
func BenchmarkFig15_RealDatasets(b *testing.B)              { benchExperiment(b, "fig15") }
func BenchmarkFig16_LPvsHalfspaceIntersection(b *testing.B) { benchExperiment(b, "fig16") }
func BenchmarkFig17_Lemma2Elimination(b *testing.B)         { benchExperiment(b, "fig17") }
func BenchmarkFig18_BoundModes(b *testing.B)                { benchExperiment(b, "fig18") }
func BenchmarkFig19_DiskScenario(b *testing.B)              { benchExperiment(b, "fig19") }
func BenchmarkFig20_PCTAvsKSkyband(b *testing.B)            { benchExperiment(b, "fig20") }
func BenchmarkFig22_TransformedVsOriginal(b *testing.B)     { benchExperiment(b, "fig22") }
func BenchmarkFig23_IndexConstruction(b *testing.B)         { benchExperiment(b, "fig23") }
func BenchmarkFig24_AmortizedResponseTime(b *testing.B)     { benchExperiment(b, "fig24") }

// Micro-benchmarks of the public API on a fixed workload, one per
// algorithm, for quick regression tracking.

func benchDB(b *testing.B, n, d int) *kspr.DB {
	b.Helper()
	rng := rand.New(rand.NewSource(11))
	records := make([][]float64, n)
	for i := range records {
		r := make([]float64, d)
		for j := range r {
			r[j] = rng.Float64()
		}
		records[i] = r
	}
	db, err := kspr.Open(records)
	if err != nil {
		b.Fatal(err)
	}
	return db
}

// benchAlgorithm measures one algorithm at a fixed engine parallelism
// (1 = the serial baseline; 0 = one worker per core).
func benchAlgorithm(b *testing.B, algo kspr.Algorithm, k, parallelism int) {
	db := benchDB(b, 2000, 4)
	focal := db.Skyline()[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := db.KSPR(focal, k, kspr.WithAlgorithm(algo), kspr.WithoutGeometry(),
			kspr.WithParallelism(parallelism))
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkQueryCTA_k10(b *testing.B)      { benchAlgorithm(b, kspr.CTA, 10, 1) }
func BenchmarkQueryPCTA_k10(b *testing.B)     { benchAlgorithm(b, kspr.PCTA, 10, 1) }
func BenchmarkQueryLPCTA_k10(b *testing.B)    { benchAlgorithm(b, kspr.LPCTA, 10, 1) }
func BenchmarkQueryKSkyband_k10(b *testing.B) { benchAlgorithm(b, kspr.KSkybandCTA, 10, 1) }

// The Parallel variants run the identical workloads with one engine worker
// per core; comparing each pair against its serial twin above measures the
// expansion engine's speedup.
func BenchmarkQueryCTAParallel_k10(b *testing.B)      { benchAlgorithm(b, kspr.CTA, 10, 0) }
func BenchmarkQueryPCTAParallel_k10(b *testing.B)     { benchAlgorithm(b, kspr.PCTA, 10, 0) }
func BenchmarkQueryLPCTAParallel_k10(b *testing.B)    { benchAlgorithm(b, kspr.LPCTA, 10, 0) }
func BenchmarkQueryKSkybandParallel_k10(b *testing.B) { benchAlgorithm(b, kspr.KSkybandCTA, 10, 0) }

func BenchmarkTopK(b *testing.B) {
	db := benchDB(b, 50000, 4)
	w := []float64{0.4, 0.3, 0.2, 0.1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		db.TopK(w, 10)
	}
}

func BenchmarkSkyline(b *testing.B) {
	db := benchDB(b, 50000, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		db.Skyline()
	}
}
