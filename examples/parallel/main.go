// Parallel: run the same kSPR query with the serial engine and with one
// expansion worker per core, verify the answers are identical, and report
// the speedup. The parallel engine fans CellTree subtree insertion,
// look-ahead rank bounds, and region finalization across goroutines while
// merging results in deterministic order — so parallelism changes latency
// and nothing else.
//
// Run with: go run ./examples/parallel
package main

import (
	"fmt"
	"log"
	"math/rand"
	"runtime"
	"time"

	kspr "repro"
)

func main() {
	// A synthetic catalogue of 3000 options scored on 4 criteria in [0,1]:
	// large enough that the expansion work dominates goroutine overheads.
	rng := rand.New(rand.NewSource(7))
	records := make([][]float64, 3000)
	for i := range records {
		records[i] = []float64{rng.Float64(), rng.Float64(), rng.Float64(), rng.Float64()}
	}
	db, err := kspr.Open(records)
	if err != nil {
		log.Fatal(err)
	}
	focal := db.Skyline()[0]

	run := func(parallelism int) (*kspr.Result, time.Duration) {
		start := time.Now()
		res, err := db.KSPR(focal, 10, kspr.WithParallelism(parallelism))
		if err != nil {
			log.Fatal(err)
		}
		return res, time.Since(start)
	}

	serial, serialTime := run(1)
	cores := runtime.GOMAXPROCS(0)
	parallel, parallelTime := run(cores) // same as WithParallelism(0)

	fmt.Printf("focal #%d, k=10, %d records, %d cores\n", focal, db.Len(), cores)
	fmt.Printf("serial   (parallelism=1): %3d regions in %v\n", len(serial.Regions), serialTime)
	fmt.Printf("parallel (parallelism=%d): %3d regions in %v (%.2fx)\n",
		cores, len(parallel.Regions), parallelTime,
		float64(serialTime)/float64(parallelTime))

	// The engine's contract: parallel output is byte-identical to serial.
	if len(serial.Regions) != len(parallel.Regions) {
		log.Fatalf("region counts differ: %d vs %d", len(serial.Regions), len(parallel.Regions))
	}
	for i := range serial.Regions {
		if !serial.Regions[i].Witness.Equal(parallel.Regions[i].Witness) ||
			serial.Regions[i].Rank != parallel.Regions[i].Rank {
			log.Fatalf("region %d differs between serial and parallel runs", i)
		}
	}
	fmt.Println("serial and parallel region lists are identical ✓")
}
