// Marketimpact compares competing options by their preference-space
// footprint: for every hotel on the skyline of a (simulated) hotel catalog,
// it computes the share of user preferences that shortlist it — the §1
// market-impact measure — and streams regions progressively as they are
// found.
//
// Run with: go run ./examples/marketimpact
package main

import (
	"fmt"
	"log"
	"sort"

	kspr "repro"
	"repro/internal/dataset"
)

func main() {
	ds := dataset.Hotel(3000, 77)
	records := make([][]float64, ds.Len())
	for i, r := range ds.Records {
		records[i] = r
	}
	db, err := kspr.Open(records)
	if err != nil {
		log.Fatal(err)
	}

	sky := db.Skyline()
	fmt.Printf("catalog: %d hotels (%d attributes), skyline size %d\n", db.Len(), db.Dim(), len(sky))
	if len(sky) > 8 {
		sky = sky[:8]
	}

	type impact struct {
		id      int
		regions int
		prob    float64
	}
	var impacts []impact
	for _, id := range sky {
		streamed := 0
		res, err := db.KSPR(id, 10,
			kspr.WithProgressive(func(kspr.Region) { streamed++ }),
		)
		if err != nil {
			log.Fatal(err)
		}
		prob := db.ImpactProbability(res, 50000, int64(id))
		impacts = append(impacts, impact{id, len(res.Regions), prob})
		fmt.Printf("  hotel %4d: %3d regions (%3d streamed progressively), impact %6.2f%%  stats: %d records processed, %v\n",
			id, len(res.Regions), streamed, 100*prob, res.Stats.ProcessedRecords, res.Stats.Elapsed)
	}

	sort.Slice(impacts, func(i, j int) bool { return impacts[i].prob > impacts[j].prob })
	fmt.Println("\nmarket impact ranking (top-10 shortlists, uniform preferences):")
	for rank, im := range impacts {
		fmt.Printf("  #%d hotel %d  %.2f%%  %v\n", rank+1, im.id, 100*im.prob, db.Record(im.id))
	}
}
