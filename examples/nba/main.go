// NBA reproduces the paper's §7.2 case study on (simulated) NBA seasons: a
// star center's kSPR regions for k=3 over points, rebounds and assists
// shift between seasons — points-driven in season 1, rebounds-driven in
// season 2 — telling a manager how to market the player each year.
//
// Run with: go run ./examples/nba
package main

import (
	"fmt"
	"log"

	kspr "repro"
	"repro/internal/dataset"
)

// attribute indices inside the 8-d NBA schema.
const (
	idxRebounds = 1
	idxAssists  = 2
	idxPoints   = 7
)

func main() {
	for season := 1; season <= 2; season++ {
		analyzeSeason(season)
	}
}

func analyzeSeason(season int) {
	ds := dataset.NBA(500, season, 2015)
	// The case study uses three attributes: points, rebounds, assists.
	records := make([][]float64, ds.Len())
	for i, r := range ds.Records {
		records[i] = []float64{r[idxPoints], r[idxRebounds], r[idxAssists]}
	}
	db, err := kspr.Open(records)
	if err != nil {
		log.Fatal(err)
	}

	const focal = 0 // the star center
	fmt.Printf("=== season %d: %s (points=%.2f rebounds=%.2f assists=%.2f)\n",
		season, ds.Labels[focal],
		records[focal][0], records[focal][1], records[focal][2])

	res, err := db.KSPR(focal, 3, kspr.WithVolumes(20000), kspr.WithSeed(int64(season)))
	if err != nil {
		log.Fatal(err)
	}
	if len(res.Regions) == 0 {
		fmt.Println("  not in any top-3 shortlist this season")
		return
	}

	// Characterize where the player is competitive: the volume-weighted
	// centroid of the kSPR regions (w1 = points weight, w2 = rebounds).
	var cw1, cw2, vol float64
	for _, reg := range res.Regions {
		cw1 += reg.Witness[0] * reg.Volume
		cw2 += reg.Witness[1] * reg.Volume
		vol += reg.Volume
	}
	cw1 /= vol
	cw2 /= vol
	fmt.Printf("  top-3 in %d regions, total area %.4f (%.1f%% of preference space)\n",
		len(res.Regions), vol, 100*db.ImpactProbability(res, 100000, 11))
	fmt.Printf("  region mass centred at points-weight %.2f vs rebounds-weight %.2f\n", cw1, cw2)
	switch {
	case cw1 > cw2+0.1:
		fmt.Println("  -> marketing advice: stress his SCORING this season")
	case cw2 > cw1+0.1:
		fmt.Println("  -> marketing advice: stress his DEFENSE/REBOUNDING this season")
	default:
		fmt.Println("  -> marketing advice: balanced profile")
	}
}
