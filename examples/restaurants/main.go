// Restaurants reproduces the running example of the paper's Figure 1: five
// restaurants rated on value, service and ambiance; the focal record is
// Kyma and we ask where it ranks among the top-3.
//
// Run with: go run ./examples/restaurants
package main

import (
	"fmt"
	"log"

	kspr "repro"
	"repro/internal/dataset"
)

func main() {
	ds := dataset.Restaurants()
	records := make([][]float64, ds.Len())
	for i, r := range ds.Records {
		records[i] = r
	}
	db, err := kspr.Open(records)
	if err != nil {
		log.Fatal(err)
	}

	const kyma = 4 // focal record p in Figure 1
	fmt.Println("dataset (value, service, ambiance):")
	for i, r := range ds.Records {
		marker := " "
		if i == kyma {
			marker = "*"
		}
		fmt.Printf("  %s %-12s %v\n", marker, ds.Labels[i], r)
	}

	res, err := db.KSPR(kyma, 3, kspr.WithVolumes(20000), kspr.WithSeed(3))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nkSPR regions where %s is top-3 (transformed space: w1=value, w2=service, w3=1-w1-w2):\n",
		ds.Labels[kyma])
	for i, reg := range res.Regions {
		fmt.Printf("  region %d: rank %d, witness (w1=%.3f, w2=%.3f), area %.4f\n",
			i, reg.Rank, reg.Witness[0], reg.Witness[1], reg.Volume)
		for _, v := range reg.Vertices {
			fmt.Printf("      vertex (%.4f, %.4f)\n", v[0], v[1])
		}
	}
	fmt.Printf("\nKyma is shortlisted for %.1f%% of uniformly random preferences.\n",
		100*db.ImpactProbability(res, 100000, 5))

	// Cross-check a couple of weight vectors with a plain top-k query.
	for _, w := range [][]float64{{0.6, 0.2, 0.2}, {0.2, 0.2, 0.6}} {
		top := db.TopK(w, 3)
		fmt.Printf("top-3 at weights %v:", w)
		for _, id := range top {
			fmt.Printf(" %s", ds.Labels[id])
		}
		fmt.Printf("  (kSPR says in-top-3=%v)\n", res.ContainsWeight(w[:2], 1e-9))
	}
}
