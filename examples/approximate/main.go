// Approximate demonstrates the approximate kSPR query (the paper's §8
// future work): trading exactness for speed with a hard accuracy
// guarantee, and visualizing certain vs uncertain regions as SVG.
//
// Run with: go run ./examples/approximate
// Writes approx.svg and exact.svg into the working directory.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"
	"time"

	kspr "repro"
)

func main() {
	// 3 attributes so the preference space is 2-d and plottable.
	rng := rand.New(rand.NewSource(2024))
	records := make([][]float64, 5000)
	for i := range records {
		records[i] = []float64{rng.Float64(), rng.Float64(), rng.Float64()}
	}
	db, err := kspr.Open(records)
	if err != nil {
		log.Fatal(err)
	}
	focal := db.Skyline()[0]
	const k = 10

	start := time.Now()
	exact, err := db.KSPR(focal, k)
	if err != nil {
		log.Fatal(err)
	}
	exactTime := time.Since(start)
	fmt.Printf("exact LP-CTA:   %8v, %4d regions\n", exactTime.Round(time.Millisecond), len(exact.Regions))

	for _, eps := range []float64{0.05, 0.01} {
		start = time.Now()
		approx, err := db.KSPRApprox(focal, k, eps)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("approx eps=%.2f: %8v, %4d certain regions, uncertain volume %.4f (converged=%v)\n",
			eps, time.Since(start).Round(time.Millisecond), len(approx.Regions),
			approx.UncertainVolume, approx.Converged)
	}

	// Render both answers.
	approx, err := db.KSPRApprox(focal, k, 0.01)
	if err != nil {
		log.Fatal(err)
	}
	writeSVG("exact.svg", exact, kspr.SVGOptions{Title: "exact kSPR (LP-CTA)"})
	writeSVG("approx.svg", &approx.Result, kspr.SVGOptions{
		Title: "approximate kSPR (certain + uncertain)",
		Extra: approx.Uncertain,
	})
	fmt.Println("wrote exact.svg and approx.svg")

	// The guarantee in action: impact probability bracketed by the
	// approximate answer.
	exactProb := db.ImpactProbability(exact, 100000, 1)
	var certain float64
	for _, r := range approx.Regions {
		certain += r.Volume
	}
	simplexArea := 0.5 // 2-d transformed space
	fmt.Printf("impact probability: exact %.4f, approx in [%.4f, %.4f]\n",
		exactProb, certain/simplexArea, (certain+approx.UncertainVolume)/simplexArea)
}

func writeSVG(path string, res *kspr.Result, opts kspr.SVGOptions) {
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	if err := kspr.WriteSVG(f, res, opts); err != nil {
		log.Fatal(err)
	}
}
