// Quickstart: build a small dataset, ask where a record is shortlisted, and
// measure its market impact.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/rand"

	kspr "repro"
)

func main() {
	// A synthetic catalogue of 500 options scored on 3 criteria in [0,1].
	rng := rand.New(rand.NewSource(42))
	records := make([][]float64, 500)
	for i := range records {
		records[i] = []float64{rng.Float64(), rng.Float64(), rng.Float64()}
	}

	db, err := kspr.Open(records)
	if err != nil {
		log.Fatal(err)
	}

	// Pick a well-placed focal option: the first skyline record.
	focal := db.Skyline()[0]
	fmt.Printf("focal record #%d = %.3f\n", focal, db.Record(focal))

	// Where in preference space is it among the top 10?
	res, err := db.KSPR(focal, 10, kspr.WithVolumes(20000), kspr.WithSeed(1))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("kSPR result: %d regions (processed %d of %d records, %d CellTree nodes, %v)\n",
		len(res.Regions), res.Stats.ProcessedRecords, db.Len(), res.Stats.CellTreeNodes, res.Stats.Elapsed)

	for i, reg := range res.Regions {
		if i >= 5 {
			fmt.Printf("  ... and %d more regions\n", len(res.Regions)-5)
			break
		}
		fmt.Printf("  region %d: rank %d (exact=%v), witness w=(%.3f, %.3f, %.3f), area %.4f\n",
			i, reg.Rank, reg.RankExact, reg.Witness[0], reg.Witness[1], 1-reg.Witness[0]-reg.Witness[1], reg.Volume)
	}

	// Market impact: the probability a random user shortlists the record.
	prob := db.ImpactProbability(res, 100000, 7)
	fmt.Printf("market impact (uniform preferences): %.2f%%\n", 100*prob)

	// With a known preference density (users mostly care about criterion 1).
	peaked := db.ImpactProbabilityPDF(res, func(w []float64) float64 {
		return w[0] * w[0]
	}, 100000, 7)
	fmt.Printf("market impact (criterion-1-heavy users): %.2f%%\n", 100*peaked)
}
