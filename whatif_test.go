package kspr

import (
	"bytes"
	"errors"
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
)

// whatifAlgos is the full algorithm matrix the what-if invariants must
// hold on.
var whatifAlgos = []struct {
	name string
	algo Algorithm
}{
	{"CTA", CTA},
	{"P-CTA", PCTA},
	{"LP-CTA", LPCTA},
	{"k-skyband", KSkybandCTA},
}

// whatifRecords builds a randomized dataset whose record 0 is deliberately
// mid-pack, so its baseline impact is neither 0 nor 1 and a reprice search
// has room in both directions.
func whatifRecords(seed int64, n, d int) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	recs := make([][]float64, n)
	for i := range recs {
		recs[i] = make([]float64, d)
		for j := range recs[i] {
			recs[i][j] = rng.Float64()
		}
	}
	for j := range recs[0] {
		recs[0][j] = 0.35 + 0.25*rng.Float64()
	}
	return recs
}

// coldImpactAt opens a fresh DB with the focal's attribute shifted by
// delta and measures the impact the long way: cold kSPR plus the standard
// Monte-Carlo membership estimate.
func coldImpactAt(t *testing.T, recs [][]float64, focal, k, attr int, delta float64,
	samples int, seed int64, opts ...QueryOption) float64 {
	t.Helper()
	mod := make([][]float64, len(recs))
	for i := range recs {
		mod[i] = append([]float64(nil), recs[i]...)
	}
	mod[focal][attr] += delta
	db, err := Open(mod)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	res, err := db.KSPR(focal, k, opts...)
	if err != nil {
		t.Fatalf("cold kSPR: %v", err)
	}
	return db.ImpactProbability(res, samples, seed)
}

// TestPriceToTargetMatchesColdRecompute is the what-if subsystem's pinned
// correctness invariant: across randomized datasets and all four exact
// algorithms, the bisection's returned price reaches the target under a
// cold recompute on a fresh DB, and the failing bracket (price - eps) does
// not.
func TestPriceToTargetMatchesColdRecompute(t *testing.T) {
	const (
		n, d, k = 40, 3, 3
		samples = 3000
		mcSeed  = int64(42)
	)
	for _, a := range whatifAlgos {
		for seed := int64(1); seed <= 3; seed++ {
			recs := whatifRecords(seed, n, d)
			db, err := Open(recs)
			if err != nil {
				t.Fatalf("open: %v", err)
			}
			opts := []QueryOption{WithAlgorithm(a.algo), WithoutGeometry()}
			baseline := coldImpactAt(t, recs, 0, k, 0, 0, samples, mcSeed, opts...)
			target := baseline + 0.2
			if target > 0.9 {
				target = (baseline + 1) / 2
			}
			spec := RepriceSpec{Attr: 0, Target: target, Eps: 1e-4, Samples: samples, Seed: mcSeed}
			rp, err := db.PriceToTarget(0, k, spec, opts...)
			if err != nil {
				t.Fatalf("%s seed %d: PriceToTarget: %v", a.name, seed, err)
			}
			if rp.AlreadyMet {
				t.Fatalf("%s seed %d: target %.4f unexpectedly already met (baseline %.4f)",
					a.name, seed, target, rp.Baseline)
			}
			if rp.Delta <= 0 {
				t.Fatalf("%s seed %d: non-positive delta %g", a.name, seed, rp.Delta)
			}
			if rp.Delta-rp.LowerDelta > spec.Eps*1.01 {
				t.Fatalf("%s seed %d: bracket [%g, %g] wider than eps %g",
					a.name, seed, rp.LowerDelta, rp.Delta, spec.Eps)
			}
			cold := coldImpactAt(t, recs, 0, k, 0, rp.Delta, samples, mcSeed, opts...)
			if cold < target {
				t.Fatalf("%s seed %d: cold recompute at delta %g gives impact %.4f < target %.4f",
					a.name, seed, rp.Delta, cold, target)
			}
			if cold != rp.Impact {
				t.Fatalf("%s seed %d: probe impact %.6f != cold impact %.6f",
					a.name, seed, rp.Impact, cold)
			}
			coldLow := coldImpactAt(t, recs, 0, k, 0, rp.LowerDelta, samples, mcSeed, opts...)
			if coldLow >= target {
				t.Fatalf("%s seed %d: cold recompute at the failing bracket %g reaches the target (%.4f >= %.4f)",
					a.name, seed, rp.LowerDelta, coldLow, target)
			}
			if rp.Stats.Probes < 3 || rp.Stats.Probes != rp.Stats.Kept+rp.Stats.Recomputed {
				t.Fatalf("%s seed %d: probes must partition into kept+recomputed: %+v", a.name, seed, rp.Stats)
			}
		}
	}
}

// TestPriceToTargetKeepsDominatedProbes pins that reprice probes at
// hopeless prices are absorbed by the incremental keep path: starting from
// a deeply dominated focal, the bisection's low-side probes synthesize the
// provably empty result instead of running the engine.
func TestPriceToTargetKeepsDominatedProbes(t *testing.T) {
	// The competitors dominate the focal until its first attribute clears
	// ~1.45, which is past the bisection's first midpoint (MaxDelta/2 = 1),
	// so the low side of the search probes provably-empty prices.
	recs := [][]float64{
		{0.05, 0.5, 0.5},
		{1.5, 0.55, 0.55},
		{1.45, 0.6, 0.6},
	}
	db, err := Open(recs)
	if err != nil {
		t.Fatal(err)
	}
	spec := RepriceSpec{Attr: 0, Target: 0.5, MaxDelta: 2, Eps: 1e-3, Samples: 2000, Seed: 7}
	rp, err := db.PriceToTarget(0, 2, spec, WithoutGeometry())
	if err != nil {
		t.Fatalf("PriceToTarget: %v", err)
	}
	if rp.Stats.Kept == 0 {
		t.Fatalf("expected dominated probes on the keep path, got stats %+v", rp.Stats)
	}
	if rp.Stats.KeepRate <= 0 {
		t.Fatalf("keep rate not recorded: %+v", rp.Stats)
	}
	if rp.Impact < spec.Target {
		t.Fatalf("returned impact %.4f below target", rp.Impact)
	}
}

// TestFrontierKeepRateAndColdAgreement pins the frontier acceptance
// criteria: grid points in dominated territory are classified by the
// incremental fast path (keep-rate > 0), the curve is nondecreasing under
// the shared sample set, and engine-computed points agree exactly with a
// cold recompute of the repriced dataset.
func TestFrontierKeepRateAndColdAgreement(t *testing.T) {
	recs := whatifRecords(5, 30, 3)
	db, err := Open(recs)
	if err != nil {
		t.Fatal(err)
	}
	const k, samples, seed = 3, 2000, int64(9)
	spec := FrontierSpec{Attr: 0, Min: 0.01, Max: 1.4, Steps: 8, Samples: samples, Seed: seed}
	curve, err := db.Frontier(0, k, spec, WithoutGeometry())
	if err != nil {
		t.Fatalf("Frontier: %v", err)
	}
	if len(curve.Points) != spec.Steps {
		t.Fatalf("got %d points, want %d", len(curve.Points), spec.Steps)
	}
	if curve.Stats.Kept == 0 || curve.Stats.KeepRate <= 0 {
		t.Fatalf("frontier reported no keep-path probes: %+v", curve.Stats)
	}
	if curve.Stats.Recomputed == 0 {
		t.Fatalf("frontier never exercised the engine: %+v", curve.Stats)
	}
	for i := 1; i < len(curve.Points); i++ {
		if curve.Points[i].Impact < curve.Points[i-1].Impact {
			t.Fatalf("impact curve decreased at point %d: %.4f -> %.4f",
				i, curve.Points[i-1].Impact, curve.Points[i].Impact)
		}
	}
	for _, p := range curve.Points {
		if p.Kept && (p.Impact != 0 || p.Regions != 0) {
			t.Fatalf("kept point %+v should be classified empty", p)
		}
		if !p.Kept {
			cold := coldImpactAt(t, recs, 0, k, 0, p.Delta, samples, seed, WithoutGeometry())
			if math.Abs(cold-p.Impact) > 1e-12 {
				t.Fatalf("frontier point value %g: impact %.6f != cold %.6f", p.Value, p.Impact, cold)
			}
		}
	}
}

// TestCompetitorsAttribution checks the attribution's internal accounting:
// Impact and Miss are complementary on the same samples, every share is a
// sub-probability of its side, the impact estimate matches
// ImpactProbability exactly (identical sampler and tolerance), and the
// entries arrive sorted.
func TestCompetitorsAttribution(t *testing.T) {
	recs := whatifRecords(3, 30, 3)
	db, err := Open(recs)
	if err != nil {
		t.Fatal(err)
	}
	const k, samples, seed = 3, 4000, int64(11)
	attr, err := db.Competitors(0, k, samples, seed, WithoutGeometry())
	if err != nil {
		t.Fatalf("Competitors: %v", err)
	}
	if attr.Impact+attr.Miss != 1 {
		t.Fatalf("impact %.6f + miss %.6f != 1", attr.Impact, attr.Miss)
	}
	res, err := db.KSPR(0, k, WithoutGeometry())
	if err != nil {
		t.Fatal(err)
	}
	if got := db.ImpactProbability(res, samples, seed); got != attr.Impact {
		t.Fatalf("attribution impact %.6f != ImpactProbability %.6f", attr.Impact, got)
	}
	var prev *CompetitorImpact
	for i := range attr.Competitors {
		c := &attr.Competitors[i]
		if c.ID == 0 {
			t.Fatalf("focal attributed to itself: %+v", c)
		}
		if c.MissShare < 0 || c.MissShare > attr.Miss {
			t.Fatalf("miss share %.6f outside [0, %.6f]", c.MissShare, attr.Miss)
		}
		if c.PressureShare < 0 || c.PressureShare > attr.Impact {
			t.Fatalf("pressure share %.6f outside [0, %.6f]", c.PressureShare, attr.Impact)
		}
		if sid, ok := db.StableID(c.ID); !ok || sid != c.StableID {
			t.Fatalf("stable id mismatch for %+v", c)
		}
		if prev != nil && (prev.MissShare < c.MissShare ||
			(prev.MissShare == c.MissShare && prev.PressureShare < c.PressureShare)) {
			t.Fatalf("entries not sorted at %d", i)
		}
		prev = c
	}
	if len(attr.Competitors) == 0 && attr.Miss > 0.01 {
		t.Fatalf("miss %.4f with no competitors attributed", attr.Miss)
	}
}

// TestPriceToTargetValidation covers the error surface: bad attribute, bad
// target, unreachable target under a MaxDelta cap, and the already-met
// short-circuit.
func TestPriceToTargetValidation(t *testing.T) {
	recs := whatifRecords(1, 20, 3)
	db, err := Open(recs)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.PriceToTarget(0, 2, RepriceSpec{Attr: 9, Target: 0.5}); err == nil {
		t.Fatal("bad attr accepted")
	}
	if _, err := db.PriceToTarget(0, 2, RepriceSpec{Attr: 0, Target: 1.5}); err == nil {
		t.Fatal("bad target accepted")
	}
	if _, err := db.PriceToTarget(-1, 2, RepriceSpec{Attr: 0, Target: 0.5}); err == nil {
		t.Fatal("bad focal accepted")
	}
	rp, err := db.PriceToTarget(0, 2, RepriceSpec{Attr: 0, Target: 0.9, MaxDelta: 1e-9,
		Samples: 1000, Seed: 3}, WithoutGeometry())
	if !errors.Is(err, ErrTargetUnreachable) {
		t.Fatalf("want ErrTargetUnreachable under a tiny MaxDelta, got %v", err)
	}
	if rp == nil || rp.Impact >= 0.9 {
		t.Fatalf("unreachable result should report the best achieved impact, got %+v", rp)
	}
	rp, err = db.PriceToTarget(0, 2, RepriceSpec{Attr: 0, Target: 1e-9, Samples: 1000, Seed: 3},
		WithoutGeometry())
	if err != nil {
		t.Fatalf("already-met search failed: %v", err)
	}
	if !rp.AlreadyMet || rp.Delta != 0 {
		t.Fatalf("want AlreadyMet with zero delta, got %+v", rp)
	}
}

// TestPriceToTargetExpansionBounded pins the automatic bracket
// expansion's probe economy: even chasing the hardest target (1.0), the
// search stays within baseline + initial bracket + 64 doublings + the
// bisection's Eps iterations — never the unbounded expansion toward
// float overflow the doubling cap guards against.
func TestPriceToTargetExpansionBounded(t *testing.T) {
	recs := [][]float64{
		{0.5, 0.5, 0.5},
		{0.5, 0.9, 0.5},
	}
	db, err := Open(recs)
	if err != nil {
		t.Fatal(err)
	}
	rp, err := db.PriceToTarget(0, 1, RepriceSpec{
		Attr: 0, Target: 1.0, Eps: 1e-3, Samples: 200, Seed: 3, VolumeMetric: true,
	}, WithoutGeometry())
	if err != nil && !errors.Is(err, ErrTargetUnreachable) {
		t.Fatalf("unexpected error: %v", err)
	}
	// 2 (baseline + bracket) + 64 doublings + ~70 bisection halvings.
	if rp.Stats.Probes > 140 {
		t.Fatalf("expansion/bisection not bounded: %d probes", rp.Stats.Probes)
	}
}

// TestMaintainedRepriceShortcut pins the Maintainer's reprice keep tier
// end-to-end through the live DB: repricing the maintained focal to a
// value with >= K strict dominators must count as Kept, and the maintained
// result must stay byte-identical to a cold recompute.
func TestMaintainedRepriceShortcut(t *testing.T) {
	recs := [][]float64{
		{0.5, 0.5, 0.5},
		{0.9, 0.92, 0.95},
		{0.95, 0.9, 0.91},
		{0.91, 0.94, 0.9},
	}
	db, err := Open(recs)
	if err != nil {
		t.Fatal(err)
	}
	lq, err := db.MaintainKSPR(0, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer lq.Close()
	stable, _ := db.StableID(0)

	// Reprice into deeply dominated territory: >= 2 strict dominators, so
	// the result is provably empty and the shortcut must keep.
	if _, err := db.Apply(Update(stable, 0.01, 0.01, 0.01)); err != nil {
		t.Fatal(err)
	}
	st := lq.Stats()
	if st.Kept != 1 || st.Recomputed != 0 {
		t.Fatalf("dominated reprice should be kept, got %+v", st)
	}
	res, _, err := lq.Result()
	if err != nil {
		t.Fatal(err)
	}
	cold, err := db.KSPR(0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(core.EncodeResult(res), core.EncodeResult(cold)) {
		t.Fatal("kept (synthesized) result diverges from cold recompute")
	}

	// Reprice back out of dominated territory: must recompute and match.
	if _, err := db.Apply(Update(stable, 0.97, 0.97, 0.97)); err != nil {
		t.Fatal(err)
	}
	st = lq.Stats()
	if st.Recomputed != 1 {
		t.Fatalf("competitive reprice should recompute, got %+v", st)
	}
	res, _, err = lq.Result()
	if err != nil {
		t.Fatal(err)
	}
	cold, err = db.KSPR(0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(core.EncodeResult(res), core.EncodeResult(cold)) {
		t.Fatal("recomputed result diverges from cold recompute")
	}
}

// TestVolumeMetricWhatIf exercises the volume impact metric on d=3 data,
// where the 2-dimensional preference space has exact polygon-area
// volumes: the bisection answer must hold under a cold recompute of the
// exact volume share, and the frontier stays monotone.
func TestVolumeMetricWhatIf(t *testing.T) {
	recs := whatifRecords(7, 25, 3)
	db, err := Open(recs)
	if err != nil {
		t.Fatal(err)
	}
	const k, samples, seed = 3, 3000, int64(5)
	spec := RepriceSpec{Attr: 0, Target: 0.3, Eps: 1e-3, Samples: samples, Seed: seed, VolumeMetric: true}
	rp, err := db.PriceToTarget(0, k, spec)
	if err != nil {
		t.Fatalf("PriceToTarget(volume): %v", err)
	}
	if !rp.AlreadyMet && rp.Impact < spec.Target {
		t.Fatalf("volume impact %v below target", rp.Impact)
	}
	mod := make([][]float64, len(recs))
	for i := range recs {
		mod[i] = append([]float64(nil), recs[i]...)
	}
	mod[0][0] += rp.Delta
	db2, err := Open(mod)
	if err != nil {
		t.Fatal(err)
	}
	res, err := db2.KSPR(0, k, WithVolumes(samples), WithSeed(seed))
	if err != nil {
		t.Fatal(err)
	}
	if share := res.TotalVolume() / 0.5; share < spec.Target-1e-9 {
		t.Fatalf("cold exact volume share %v below target %v", share, spec.Target)
	}

	curve, err := db.Frontier(0, k, FrontierSpec{Attr: 0, Min: 0.01, Max: 1.3, Steps: 5,
		Samples: 2000, Seed: seed, VolumeMetric: true})
	if err != nil {
		t.Fatalf("Frontier(volume): %v", err)
	}
	for i := 1; i < len(curve.Points); i++ {
		if curve.Points[i].Impact < curve.Points[i-1].Impact-1e-12 {
			t.Fatalf("exact-volume frontier decreased at %d", i)
		}
	}
}

// TestCompetitorsValidation covers the attribution error surface and the
// samples default.
func TestCompetitorsValidation(t *testing.T) {
	recs := whatifRecords(2, 15, 3)
	db, err := Open(recs)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.Competitors(-1, 2, 100, 1); err == nil {
		t.Fatal("bad focal accepted")
	}
	if _, err := db.Competitors(len(recs), 2, 100, 1); err == nil {
		t.Fatal("out-of-range focal accepted")
	}
	attr, err := db.Competitors(0, 2, 0, 1, WithoutGeometry())
	if err != nil {
		t.Fatal(err)
	}
	if attr.Samples != DefaultWhatIfSamples {
		t.Fatalf("samples default not applied: %d", attr.Samples)
	}
}

// TestFrontierValidation covers the frontier's error surface and the
// no-competitor edge.
func TestFrontierValidation(t *testing.T) {
	recs := whatifRecords(1, 10, 3)
	db, err := Open(recs)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.Frontier(0, 2, FrontierSpec{Attr: 7}); err == nil {
		t.Fatal("bad attr accepted")
	}
	if _, err := db.Frontier(0, 2, FrontierSpec{Attr: 0, Steps: 1, Min: 0, Max: 1}); err == nil {
		t.Fatal("single-step grid accepted")
	}
	if _, err := db.Frontier(0, 2, FrontierSpec{Attr: 0, Min: 2, Max: 1}); err == nil {
		t.Fatal("inverted range accepted")
	}

	solo, err := Open([][]float64{{0.4, 0.6}})
	if err != nil {
		t.Fatal(err)
	}
	curve, err := solo.Frontier(0, 1, FrontierSpec{Attr: 0, Min: 0.1, Max: 0.9, Steps: 3, Samples: 100})
	if err != nil {
		t.Fatalf("solo frontier: %v", err)
	}
	for _, p := range curve.Points {
		if p.Impact != 1 || !p.Kept {
			t.Fatalf("a dataset without competitors is shortlisted everywhere, got %+v", p)
		}
	}
}
