package kspr

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/store"
)

// fillStore opens a store-backed DB at dir and applies n random records.
func fillStore(t *testing.T, dir string, n int, opts ...StoreOption) *DB {
	t.Helper()
	db, err := OpenStore(dir, opts...)
	if err != nil {
		t.Fatal(err)
	}
	muts := []Mutation{}
	for _, r := range liveRecords(17, n, 3) {
		muts = append(muts, Insert(r...))
	}
	if _, err := db.Apply(muts...); err != nil {
		t.Fatal(err)
	}
	return db
}

// assertSameResults runs every algorithm on both handles and requires
// byte-identical encoded results — the acceptance bar for the persisted
// index: a warm restart may never change an answer, only skip work.
func assertSameResults(t *testing.T, warm, cold *DB) {
	t.Helper()
	algos := map[string]Algorithm{
		"CTA": CTA, "P-CTA": PCTA, "LP-CTA": LPCTA, "KSkybandCTA": KSkybandCTA,
	}
	for name, algo := range algos {
		for _, focal := range []int{0, 7, 31} {
			w, err := warm.KSPR(focal, 5, WithAlgorithm(algo))
			if err != nil {
				t.Fatalf("%s focal %d warm: %v", name, focal, err)
			}
			c, err := cold.KSPR(focal, 5, WithAlgorithm(algo))
			if err != nil {
				t.Fatalf("%s focal %d cold: %v", name, focal, err)
			}
			if !bytes.Equal(core.EncodeResult(w), core.EncodeResult(c)) {
				t.Fatalf("%s focal %d: warm result differs from cold", name, focal)
			}
		}
	}
	// Non-kSPR read paths must agree too (skyband queries hit the
	// persisted table directly on the warm handle).
	for k := 1; k <= 12; k++ {
		w, c := warm.KSkyband(k), cold.KSkyband(k)
		if len(w) != len(c) {
			t.Fatalf("k-skyband %d: warm %v cold %v", k, w, c)
		}
		for i := range w {
			if w[i] != c[i] {
				t.Fatalf("k-skyband %d: warm %v cold %v", k, w, c)
			}
		}
	}
}

func TestOpenStoreWarmRestart(t *testing.T) {
	dir := t.TempDir()
	db := fillStore(t, dir, 60)
	if err := db.SnapshotStore(); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, store.IndexFileName)); err != nil {
		t.Fatalf("snapshot did not persist the index: %v", err)
	}

	warm, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !warm.IndexWarm() {
		t.Fatal("restart with a persisted index was not warm")
	}
	if warm.cur().tree.Band == nil {
		t.Fatal("warm tree has no skyband table")
	}
	// Frozen handles pin the warm flag with the generation.
	if !warm.Freeze().IndexWarm() {
		t.Fatal("frozen handle lost the warm flag")
	}

	// A cold control: same store with the index file removed.
	if err := os.Remove(filepath.Join(dir, store.IndexFileName)); err != nil {
		t.Fatal(err)
	}
	cold, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if cold.IndexWarm() {
		t.Fatal("restart without an index file claims to be warm")
	}
	assertSameResults(t, warm, cold)

	// The cold open rewrote the index, so the next restart is warm again.
	again, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !again.IndexWarm() {
		t.Fatal("cold open did not persist a fresh index")
	}
}

func TestOpenStoreCorruptIndexFallsBack(t *testing.T) {
	dir := t.TempDir()
	db := fillStore(t, dir, 40)
	if err := db.SnapshotStore(); err != nil {
		t.Fatal(err)
	}
	db.Close()

	path := filepath.Join(dir, store.IndexFileName)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	db2, err := OpenStore(dir)
	if err != nil {
		t.Fatalf("corrupt index must not fail the open: %v", err)
	}
	if db2.IndexWarm() {
		t.Fatal("corrupt index served a warm start")
	}
	if db2.Len() != 40 {
		t.Fatalf("recovered %d records, want 40", db2.Len())
	}
	if _, err := db2.KSPR(0, 3); err != nil {
		t.Fatalf("query after fallback: %v", err)
	}
}

func TestOpenStoreStaleIndexFallsBack(t *testing.T) {
	dir := t.TempDir()
	db := fillStore(t, dir, 40, WithSnapshotEvery(1000))
	if err := db.SnapshotStore(); err != nil {
		t.Fatal(err)
	}
	// Advance past the snapshot: the WAL now holds a batch the index has
	// not seen, so recovery lands on a newer generation than idx.Gen.
	if _, err := db.Apply(Insert(0.9, 0.9, 0.9)); err != nil {
		t.Fatal(err)
	}
	db.Close()

	db2, err := OpenStore(dir, WithSnapshotEvery(1000))
	if err != nil {
		t.Fatal(err)
	}
	if db2.IndexWarm() {
		t.Fatal("stale index served a warm start")
	}
	if db2.Len() != 41 {
		t.Fatalf("recovered %d records, want 41", db2.Len())
	}
}

func TestApplySnapshotPersistsIndex(t *testing.T) {
	dir := t.TempDir()
	db := fillStore(t, dir, 30, WithSnapshotEvery(1))
	// SnapshotEvery(1): the insert batch itself triggered the snapshot,
	// which must have persisted the index and armed the live tree's table.
	if _, err := os.Stat(filepath.Join(dir, store.IndexFileName)); err != nil {
		t.Fatalf("automatic snapshot did not persist the index: %v", err)
	}
	if db.cur().tree.Band == nil {
		t.Fatal("apply-snapshot state has no skyband table")
	}
	db.Close()

	db2, err := OpenStore(dir, WithSnapshotEvery(1))
	if err != nil {
		t.Fatal(err)
	}
	if !db2.IndexWarm() {
		t.Fatal("restart after automatic snapshot was not warm")
	}
	// A mismatched fanout must reject the layout, not serve a wrong tree.
	db3, err := OpenStore(dir, WithStoreFanout(8))
	if err != nil {
		t.Fatal(err)
	}
	if db3.IndexWarm() {
		t.Fatal("index built at fanout 64 served a fanout-8 open")
	}
}
